// Package command defines the Nimbus control-plane command model.
//
// The Nimbus control plane has four major command groups (paper §3.4):
//
//   - task commands execute an application function;
//   - copy commands move a data object between two physical instances,
//     either within a worker (local copy) or across workers (an
//     asynchronous send/receive pair following a push model);
//   - data commands create and destroy physical data objects;
//   - file commands save and load data objects to/from durable storage
//     (used by checkpointing).
//
// Every command has five fields: a unique identifier, a read set, a write
// set, a before set of same-worker commands that must complete first, and a
// binary parameter blob. Task commands carry a sixth field naming the
// application function. Cross-worker dependencies are never expressed in
// before sets; they are always encoded as a copy pair, so a worker can
// resolve every dependency locally (control-plane requirement 1, paper
// §3.1).
package command

import (
	"fmt"
	"strings"

	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/wire"
)

// Kind discriminates the command types.
type Kind uint8

// Command kinds. The zero value is invalid so that forgotten initialization
// is caught early.
const (
	// Task runs an application function over its read/write sets.
	Task Kind = iota + 1
	// CopySend pushes the contents of a local object to a receive command
	// on another worker. It starts transmitting as soon as its before set
	// is satisfied (push model).
	CopySend
	// CopyRecv installs a pushed payload into a local object. It completes
	// when both the payload has arrived and its before set is satisfied.
	CopyRecv
	// LocalCopy copies one local object into another on the same worker.
	LocalCopy
	// Create allocates a physical object in the worker's memory.
	Create
	// Destroy frees a physical object.
	Destroy
	// Save writes a physical object to durable storage (checkpointing).
	Save
	// Load reads a physical object back from durable storage (recovery).
	Load
)

// String returns the lowercase command kind name.
func (k Kind) String() string {
	switch k {
	case Task:
		return "task"
	case CopySend:
		return "copy-send"
	case CopyRecv:
		return "copy-recv"
	case LocalCopy:
		return "local-copy"
	case Create:
		return "create"
	case Destroy:
		return "destroy"
	case Save:
		return "save"
	case Load:
		return "load"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Command is one unit of control-plane work dispatched to a worker.
//
// Object references are physical: Nimbus data objects are mutable, so a
// logical object's physical instance on a given worker keeps a stable
// ObjectID across loop iterations. This stability is what lets execution
// templates cache object IDs instead of re-parameterizing them on every
// instantiation (paper §3.3).
type Command struct {
	// ID uniquely identifies the command within a job.
	ID ids.CommandID
	// Kind selects the command type.
	Kind Kind
	// Function names the application function to run (Task only).
	Function ids.FunctionID
	// Reads lists physical objects the command reads. For copies, Reads[0]
	// is the source object (CopySend, LocalCopy).
	Reads []ids.ObjectID
	// Writes lists physical objects the command writes. For copies,
	// Writes[0] is the destination object (CopyRecv, LocalCopy). For
	// Create/Destroy/Save/Load, Writes[0] (or Reads[0] for Save) names the
	// affected object.
	Writes []ids.ObjectID
	// Before lists same-worker commands that must complete before this one
	// can run.
	Before []ids.CommandID
	// Params is the opaque application parameter blob (Task), or the
	// checkpoint key (Save/Load), or the initial contents (Create).
	Params params.Blob

	// DstWorker and DstCommand route a CopySend's payload: the payload is
	// delivered to DstWorker tagged with the CommandID of the matching
	// CopyRecv there.
	DstWorker  ids.WorkerID
	DstCommand ids.CommandID

	// Logical records the logical identity of the object a data/copy/file
	// command materializes. Workers use it to create instances lazily and
	// to label checkpoints.
	Logical ids.LogicalID
	// Version is the data version produced by this command's write, as
	// assigned by the controller's directory. Workers carry it through the
	// data plane so receivers can label installed buffers.
	Version uint64
}

// IsCopy reports whether the command is one of the copy kinds.
func (c *Command) IsCopy() bool {
	return c.Kind == CopySend || c.Kind == CopyRecv || c.Kind == LocalCopy
}

// Clone returns a deep copy of the command.
func (c *Command) Clone() *Command {
	d := *c
	d.Reads = append([]ids.ObjectID(nil), c.Reads...)
	d.Writes = append([]ids.ObjectID(nil), c.Writes...)
	d.Before = append([]ids.CommandID(nil), c.Before...)
	d.Params = append(params.Blob(nil), c.Params...)
	return &d
}

// String renders a compact human-readable form for logs and tests.
func (c *Command) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", c.ID, c.Kind)
	if c.Kind == Task {
		fmt.Fprintf(&b, " %s", c.Function)
	}
	if len(c.Reads) > 0 {
		fmt.Fprintf(&b, " r%v", c.Reads)
	}
	if len(c.Writes) > 0 {
		fmt.Fprintf(&b, " w%v", c.Writes)
	}
	if len(c.Before) > 0 {
		fmt.Fprintf(&b, " before%v", c.Before)
	}
	if c.Kind == CopySend {
		fmt.Fprintf(&b, " ->%s/%s", c.DstWorker, c.DstCommand)
	}
	return b.String()
}

// Encode appends the command's wire form to w.
func (c *Command) Encode(w *wire.Writer) {
	w.Uvarint(uint64(c.ID))
	w.Byte(byte(c.Kind))
	w.Uvarint(uint64(c.Function))
	w.Uvarint(uint64(len(c.Reads)))
	for _, o := range c.Reads {
		w.Uvarint(uint64(o))
	}
	w.Uvarint(uint64(len(c.Writes)))
	for _, o := range c.Writes {
		w.Uvarint(uint64(o))
	}
	w.Uvarint(uint64(len(c.Before)))
	for _, b := range c.Before {
		w.Uvarint(uint64(b))
	}
	w.Bytes(c.Params)
	w.Uvarint(uint64(c.DstWorker))
	w.Uvarint(uint64(c.DstCommand))
	w.Uvarint(uint64(c.Logical))
	w.Uvarint(c.Version)
}

// Decode reads a command from r into c, replacing its contents.
func (c *Command) Decode(r *wire.Reader) error {
	c.ID = ids.CommandID(r.Uvarint())
	c.Kind = Kind(r.Byte())
	c.Function = ids.FunctionID(r.Uvarint())
	nr := r.Count()
	if r.Err != nil {
		return r.Err
	}
	c.Reads = nil
	if nr > 0 {
		c.Reads = make([]ids.ObjectID, nr)
		for i := range c.Reads {
			c.Reads[i] = ids.ObjectID(r.Uvarint())
		}
	}
	nw := r.Count()
	if r.Err != nil {
		return r.Err
	}
	c.Writes = nil
	if nw > 0 {
		c.Writes = make([]ids.ObjectID, nw)
		for i := range c.Writes {
			c.Writes[i] = ids.ObjectID(r.Uvarint())
		}
	}
	nb := r.Count()
	if r.Err != nil {
		return r.Err
	}
	c.Before = nil
	if nb > 0 {
		c.Before = make([]ids.CommandID, nb)
		for i := range c.Before {
			c.Before[i] = ids.CommandID(r.Uvarint())
		}
	}
	c.Params = params.Blob(r.BytesCopy())
	c.DstWorker = ids.WorkerID(r.Uvarint())
	c.DstCommand = ids.CommandID(r.Uvarint())
	c.Logical = ids.LogicalID(r.Uvarint())
	c.Version = r.Uvarint()
	return r.Err
}
