package command

import (
	"reflect"
	"testing"
	"testing/quick"

	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/wire"
)

func sampleCommand() *Command {
	return &Command{
		ID: 42, Kind: CopySend, Function: 7,
		Reads:     []ids.ObjectID{1, 2},
		Writes:    []ids.ObjectID{3},
		Before:    []ids.CommandID{40, 41},
		Params:    params.Blob{9, 9, 9},
		DstWorker: 5, DstCommand: 43,
		Logical: 11, Version: 3,
	}
}

func TestCommandRoundTrip(t *testing.T) {
	c := sampleCommand()
	var w wire.Writer
	c.Encode(&w)
	var got Command
	if err := got.Decode(wire.NewReader(w.Buf)); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(c, &got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, *c)
	}
}

func TestCommandClone(t *testing.T) {
	c := sampleCommand()
	d := c.Clone()
	d.Reads[0] = 99
	d.Before[0] = 99
	if c.Reads[0] == 99 || c.Before[0] == 99 {
		t.Fatal("clone shares slices")
	}
}

func TestKindString(t *testing.T) {
	for k := Task; k <= Load; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Fatalf("kind %d has no name: %q", k, s)
		}
	}
}

func TestEntryMaterialize(t *testing.T) {
	e := &TemplateEntry{
		Index: 3, Kind: CopySend, Function: 9,
		Reads:     []ids.ObjectID{10},
		BeforeIdx: []int32{1, 2},
		ParamSlot: 1,
		Fixed:     params.Blob{1},
		DstWorker: 4, DstIdx: 5,
	}
	var c Command
	arr := []params.Blob{{7}, {8}}
	e.Materialize(100, arr, &c)
	if c.ID != 103 {
		t.Fatalf("id = %v", c.ID)
	}
	if len(c.Before) != 2 || c.Before[0] != 101 || c.Before[1] != 102 {
		t.Fatalf("before = %v", c.Before)
	}
	if c.DstCommand != 105 {
		t.Fatalf("dst = %v", c.DstCommand)
	}
	if len(c.Params) != 1 || c.Params[0] != 8 {
		t.Fatalf("params = %v (want slot 1)", c.Params)
	}
	// Without a parameter array the cached Fixed blob applies.
	e.Materialize(100, nil, &c)
	if len(c.Params) != 1 || c.Params[0] != 1 {
		t.Fatalf("params = %v (want fixed)", c.Params)
	}
}

// Property: entry wire round trip preserves everything.
func TestQuickEntryRoundTrip(t *testing.T) {
	f := func(idx int32, fnID uint32, reads []uint64, before []int32, slot int32, fixed []byte) bool {
		e := TemplateEntry{
			Index: idx & 0x7fffffff, Kind: Task,
			Function:  ids.FunctionID(fnID),
			ParamSlot: slot,
			Fixed:     params.Blob(fixed),
		}
		for _, r := range reads {
			e.Reads = append(e.Reads, ids.ObjectID(r))
		}
		e.BeforeIdx = append(e.BeforeIdx, before...)
		var w wire.Writer
		e.Encode(&w)
		var got TemplateEntry
		if err := got.Decode(wire.NewReader(w.Buf)); err != nil {
			return false
		}
		if got.Index != e.Index || got.Function != e.Function || got.ParamSlot != e.ParamSlot {
			return false
		}
		if len(got.Reads) != len(e.Reads) || len(got.BeforeIdx) != len(e.BeforeIdx) {
			return false
		}
		if len(got.Fixed) != len(e.Fixed) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEditRoundTrip(t *testing.T) {
	e := Edit{
		Remove: []int32{1, 5},
		Add: []TemplateEntry{
			{Index: 9, Kind: Task, Function: 3, ParamSlot: NoParamSlot},
		},
	}
	var w wire.Writer
	e.Encode(&w)
	var got Edit
	if err := got.Decode(wire.NewReader(w.Buf)); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Remove) != 2 || got.Remove[1] != 5 || len(got.Add) != 1 || got.Add[0].Index != 9 {
		t.Fatalf("edit mismatch: %+v", got)
	}
}
