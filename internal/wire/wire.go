// Package wire provides low-level binary encoding helpers shared by the
// control-plane codec (internal/proto) and the command model
// (internal/command).
//
// The control plane is the measured artifact in this reproduction, so its
// wire format is a hand-rolled, allocation-conscious binary encoding rather
// than gob or JSON: varint-coded integers, length-prefixed byte strings, and
// no reflection. Writers append to a caller-owned buffer; readers consume a
// slice and record the first error, letting call sites chain reads without
// checking errors at every step (the same style as encoding/binary's
// AppendUvarint and params.Decoder).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned when a reader runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// Writer appends binary values to a buffer. The zero value is ready to use.
type Writer struct {
	Buf []byte
}

// Reset truncates the buffer, retaining capacity.
func (w *Writer) Reset() { w.Buf = w.Buf[:0] }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.Buf) }

// Byte appends a single byte.
func (w *Writer) Byte(v byte) { w.Buf = append(w.Buf, v) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.Buf = binary.AppendUvarint(w.Buf, v) }

// Varint appends a signed varint.
func (w *Writer) Varint(v int64) { w.Buf = binary.AppendVarint(w.Buf, v) }

// Uint32 appends a fixed-width big-endian uint32.
func (w *Writer) Uint32(v uint32) { w.Buf = binary.BigEndian.AppendUint32(w.Buf, v) }

// Uint64 appends a fixed-width big-endian uint64.
func (w *Writer) Uint64(v uint64) { w.Buf = binary.BigEndian.AppendUint64(w.Buf, v) }

// Float64 appends a float64 as its IEEE-754 bits.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(v []byte) {
	w.Uvarint(uint64(len(v)))
	w.Buf = append(w.Buf, v...)
}

// String appends a length-prefixed string.
func (w *Writer) String(v string) {
	w.Uvarint(uint64(len(v)))
	w.Buf = append(w.Buf, v...)
}

// Uvarints appends a length-prefixed slice of unsigned varints.
func (w *Writer) Uvarints(v []uint64) {
	w.Uvarint(uint64(len(v)))
	for _, u := range v {
		w.Uvarint(u)
	}
}

// Float64s appends a length-prefixed slice of float64s.
func (w *Writer) Float64s(v []float64) {
	w.Uvarint(uint64(len(v)))
	for _, f := range v {
		w.Float64(f)
	}
}

// Reader consumes binary values from a byte slice. The first failure is
// latched in Err and all subsequent reads return zero values.
type Reader struct {
	Buf []byte
	Off int
	Err error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{Buf: buf} }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.Buf) - r.Off }

func (r *Reader) fail(what string) {
	if r.Err == nil {
		r.Err = fmt.Errorf("%w: %s at offset %d", ErrTruncated, what, r.Off)
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.Err != nil {
		return 0
	}
	if r.Off >= len(r.Buf) {
		r.fail("byte")
		return 0
	}
	v := r.Buf[r.Off]
	r.Off++
	return v
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.Buf[r.Off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.Off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Varint(r.Buf[r.Off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.Off += n
	return v
}

// Uint32 reads a fixed-width big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.Err != nil {
		return 0
	}
	if r.Off+4 > len(r.Buf) {
		r.fail("uint32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.Buf[r.Off:])
	r.Off += 4
	return v
}

// Uint64 reads a fixed-width big-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.Err != nil {
		return 0
	}
	if r.Off+8 > len(r.Buf) {
		r.fail("uint64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.Buf[r.Off:])
	r.Off += 8
	return v
}

// Float64 reads a float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Count reads a length prefix and validates it against the remaining
// bytes (every element of a length-prefixed sequence occupies at least
// one byte), so corrupted or hostile input cannot drive huge allocations.
func (r *Reader) Count() int {
	n := r.Uvarint()
	if r.Err != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.fail("count")
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string. The result aliases the
// reader's buffer; a zero-length string decodes as nil so encode/decode
// round trips preserve nil-ness.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.Err != nil || n == 0 {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail("bytes body")
		return nil
	}
	v := r.Buf[r.Off : r.Off+int(n)]
	r.Off += int(n)
	return v
}

// BytesCopy reads a length-prefixed byte string into fresh storage (nil
// for a zero-length string).
func (r *Reader) BytesCopy() []byte {
	v := r.Bytes()
	if len(v) == 0 {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	return string(r.Bytes())
}

// Uvarints reads a length-prefixed slice of unsigned varints.
func (r *Reader) Uvarints() []uint64 {
	n := r.Uvarint()
	if r.Err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // each element is at least one byte
		r.fail("uvarints body")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uvarint()
	}
	return out
}

// Float64s reads a length-prefixed slice of float64s.
func (r *Reader) Float64s() []float64 {
	n := r.Uvarint()
	if r.Err != nil {
		return nil
	}
	// Divide instead of multiplying: n*8 can wrap uint64 on hostile input.
	if n > uint64(r.Remaining())/8 {
		r.fail("float64s body")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}
