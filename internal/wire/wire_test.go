package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 5)
	w.Varint(-42)
	w.Uint32(0xdeadbeef)
	w.Uint64(1 << 60)
	w.Float64(math.Pi)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("hello"))
	w.String("world")
	w.Uvarints([]uint64{1, 2, 3})
	w.Float64s([]float64{0.5, -0.5})

	r := NewReader(w.Buf)
	if got := r.Byte(); got != 7 {
		t.Fatalf("byte = %d", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+5 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.Varint(); got != -42 {
		t.Fatalf("varint = %d", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Fatalf("uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<60 {
		t.Fatalf("uint64 = %x", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Fatalf("float = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("bools wrong")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("bytes = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Fatalf("string = %q", got)
	}
	u := r.Uvarints()
	if len(u) != 3 || u[0] != 1 || u[2] != 3 {
		t.Fatalf("uvarints = %v", u)
	}
	f := r.Float64s()
	if len(f) != 2 || f[0] != 0.5 || f[1] != -0.5 {
		t.Fatalf("float64s = %v", f)
	}
	if r.Err != nil {
		t.Fatalf("reader error: %v", r.Err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	var w Writer
	w.Bytes([]byte("payload"))
	for cut := 0; cut < w.Len(); cut++ {
		r := NewReader(w.Buf[:cut])
		r.Bytes()
		if r.Err == nil {
			t.Fatalf("no error at cut %d", cut)
		}
	}
}

func TestErrLatched(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uint64()
	if r.Err == nil {
		t.Fatal("expected error")
	}
	first := r.Err
	_ = r.Byte()
	_ = r.String()
	if r.Err != first {
		t.Fatalf("error replaced: %v", r.Err)
	}
}

// Property: any (uvarint, bytes, varint) triple round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, b []byte, i int64, s string) bool {
		var w Writer
		w.Uvarint(u)
		w.Bytes(b)
		w.Varint(i)
		w.String(s)
		r := NewReader(w.Buf)
		gu := r.Uvarint()
		gb := r.Bytes()
		gi := r.Varint()
		gs := r.String()
		return r.Err == nil && gu == u && bytes.Equal(gb, b) && gi == i && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesCopyIndependence(t *testing.T) {
	var w Writer
	w.Bytes([]byte{1, 2, 3})
	r := NewReader(w.Buf)
	got := r.BytesCopy()
	w.Buf[len(w.Buf)-1] = 99
	if got[2] != 3 {
		t.Fatalf("BytesCopy aliases the buffer")
	}
}

// TestHostileCounts verifies the allocation guards: length prefixes far
// larger than the remaining input must fail instead of sizing an
// allocation from attacker-controlled bytes.
func TestHostileCounts(t *testing.T) {
	huge := func() Writer {
		var w Writer
		w.Uvarint(1 << 50)
		return w
	}

	w := huge()
	r := NewReader(w.Buf)
	if r.Count(); r.Err == nil {
		t.Fatal("Count accepted a 2^50 prefix over an empty tail")
	}

	w = huge()
	r = NewReader(w.Buf)
	if got := r.Bytes(); got != nil || r.Err == nil {
		t.Fatalf("Bytes accepted a 2^50 prefix: %v, err %v", got, r.Err)
	}

	w = huge()
	r = NewReader(w.Buf)
	if got := r.BytesCopy(); got != nil || r.Err == nil {
		t.Fatalf("BytesCopy accepted a 2^50 prefix: %v, err %v", got, r.Err)
	}

	w = huge()
	r = NewReader(w.Buf)
	if got := r.Uvarints(); got != nil || r.Err == nil {
		t.Fatalf("Uvarints accepted a 2^50 prefix: %v, err %v", got, r.Err)
	}

	w = huge()
	r = NewReader(w.Buf)
	if got := r.Float64s(); got != nil || r.Err == nil {
		t.Fatalf("Float64s accepted a 2^50 prefix: %v, err %v", got, r.Err)
	}

	// A count that fits the remaining bytes but whose elements then run
	// out must fail on the element reads, not panic.
	var w2 Writer
	w2.Uvarint(3)
	w2.Uvarint(1) // only one element present
	r = NewReader(w2.Buf)
	n := r.Count()
	for i := 0; i < n; i++ {
		r.Uvarint()
	}
	if r.Err == nil {
		t.Fatal("expected error reading past the declared count")
	}
}

// TestFloat64sOverflowCount guards the n*8 length check against uvarint
// values whose multiplication by eight wraps uint64.
func TestFloat64sOverflowCount(t *testing.T) {
	var w Writer
	w.Uvarint(1<<61 + 1) // *8 wraps to 8
	w.Float64(1.0)
	r := NewReader(w.Buf)
	if got := r.Float64s(); got != nil || r.Err == nil {
		t.Fatalf("Float64s accepted an overflowing count: %v, err %v", got, r.Err)
	}
}

// TestTruncatedEveryPrimitive truncates a buffer holding one of each
// primitive at every byte offset; every read sequence must end in an error
// without panicking.
func TestTruncatedEveryPrimitive(t *testing.T) {
	var w Writer
	w.Byte(1)
	w.Uvarint(300)
	w.Varint(-300)
	w.Uint32(7)
	w.Uint64(9)
	w.Float64(2.5)
	w.Bool(true)
	w.Bytes([]byte("abc"))
	w.String("de")
	w.Uvarints([]uint64{1, 2})
	w.Float64s([]float64{3.5})
	for cut := 0; cut < w.Len(); cut++ {
		r := NewReader(w.Buf[:cut])
		r.Byte()
		r.Uvarint()
		r.Varint()
		r.Uint32()
		r.Uint64()
		r.Float64()
		r.Bool()
		r.Bytes()
		_ = r.String()
		r.Uvarints()
		r.Float64s()
		if r.Err == nil {
			t.Fatalf("no error with %d of %d bytes", cut, w.Len())
		}
	}
}
