// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§5). Each experiment returns
// a Table with the same rows/series the paper reports; cmd/nimbus-bench
// prints them and bench_test.go wraps them as testing.B benchmarks.
//
// Absolute numbers differ from the paper (the substrate is an in-process
// cluster on one machine, not 100 EC2 nodes); the reproduction target is
// the shape: who wins, by what factor, and where the crossovers fall.
// Calibration constants live in Scale; Quick() is sized for laptops and
// CI, Paper() for full paper-scale runs.
package bench

import (
	"fmt"
	"strings"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/app/lr"
	"nimbus/internal/cluster"
	"nimbus/internal/controller"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// Table is one regenerated table or figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale calibrates an experiment run.
type Scale struct {
	Name string
	// Workers is the sweep for Figures 7/8; Fig1Workers for Figure 1.
	Workers     []int
	Fig1Workers []int
	// Tasks is the per-iteration gradient task count (the paper uses
	// 8000: one controller template split into 100 worker templates of 80
	// tasks, §5.2).
	Tasks int
	// ReduceFan is the two-level reduction fan-in.
	ReduceFan int
	// Slots is per-worker executor concurrency (8 cores on c3.2xlarge).
	Slots int
	// Latency is the one-way network latency model.
	Latency time.Duration
	// TaskDur / ReduceDur calibrate simulated compute (paper: ~5ms LR
	// tasks; k-means ~45% heavier).
	TaskDur, ReduceDur time.Duration
	// Iterations per measurement.
	Iterations int
	// SparkPerTask is the central baseline's modeled per-task scheduling
	// cost (paper-measured: 166µs for Spark 2.0).
	SparkPerTask time.Duration
	// NimbusPerTask is Nimbus's modeled per-task cost for non-templated
	// scheduling (paper-measured: 134µs, covering the RPC overhead the
	// in-memory transport does not pay).
	NimbusPerTask time.Duration
	// Water (Figure 11) calibration.
	WaterWorkers   int
	WaterParts     int
	WaterGridDur   time.Duration
	WaterReduceDur time.Duration
	WaterSubsteps  int
	WaterReinit    int
	WaterJacobi    int
	WaterFrames    int
	// Shuffle (streaming data plane) calibration: a grouped stage pulls
	// ShuffleParts partitions of ShufflePartBytes each across
	// ShuffleWorkers workers.
	ShuffleWorkers   int
	ShuffleParts     int
	ShufflePartBytes int
	// FrontDoor (session multiplexing) calibration: herd sizes to sweep,
	// and the iteration bound of the concurrent predicate loop.
	FrontDoorSessions  []int
	FrontDoorLoopIters int
	// Fleet (elastic lifecycle) calibration: the mid-kmeans grow target,
	// per-partition point count of the real (non-simulated) clustering
	// job, and the size of the bare-fleet join/drain throughput sim.
	FleetGrowTo     int
	FleetPoints     int
	FleetSimWorkers int
}

// Quick returns a laptop/CI-sized scale preserving the paper's shapes.
func Quick() Scale {
	return Scale{
		Name:          "quick",
		Workers:       []int{4, 8, 16},
		Fig1Workers:   []int{4, 8, 12, 16},
		Tasks:         160,
		ReduceFan:     8,
		Slots:         8,
		Latency:       100 * time.Microsecond,
		TaskDur:       2 * time.Millisecond,
		ReduceDur:     500 * time.Microsecond,
		Iterations:    4,
		SparkPerTask:  166 * time.Microsecond,
		NimbusPerTask: 134 * time.Microsecond,
		WaterWorkers:  8, WaterParts: 32,
		WaterGridDur: time.Millisecond, WaterReduceDur: 100 * time.Microsecond,
		WaterSubsteps: 2, WaterReinit: 3, WaterJacobi: 6, WaterFrames: 2,
		ShuffleWorkers: 4, ShuffleParts: 8, ShufflePartBytes: 4 << 20,
		FrontDoorSessions: []int{1000}, FrontDoorLoopIters: 50,
		FleetGrowTo: 64, FleetPoints: 1000, FleetSimWorkers: 256,
	}
}

// Paper returns the full paper-scale configuration (100 workers, 8000
// tasks per iteration). Expect multi-minute runtimes.
func Paper() Scale {
	return Scale{
		Name:          "paper",
		Workers:       []int{20, 50, 100},
		Fig1Workers:   []int{30, 40, 50, 60, 70, 80, 90, 100},
		Tasks:         8000,
		ReduceFan:     80,
		Slots:         8,
		Latency:       100 * time.Microsecond,
		TaskDur:       5 * time.Millisecond,
		ReduceDur:     time.Millisecond,
		Iterations:    10,
		SparkPerTask:  166 * time.Microsecond,
		NimbusPerTask: 134 * time.Microsecond,
		WaterWorkers:  64, WaterParts: 256,
		WaterGridDur: 6 * time.Millisecond, WaterReduceDur: 100 * time.Microsecond,
		WaterSubsteps: 3, WaterReinit: 4, WaterJacobi: 10, WaterFrames: 2,
		ShuffleWorkers: 8, ShuffleParts: 32, ShufflePartBytes: 16 << 20,
		FrontDoorSessions: []int{1000, 10000}, FrontDoorLoopIters: 100,
		FleetGrowTo: 64, FleetPoints: 10000, FleetSimWorkers: 1000,
	}
}

// lrConfig builds the simulated LR profile at this scale.
func (s Scale) lrConfig() lr.Config {
	return lr.Config{
		Partitions: s.Tasks, ReduceFan: s.ReduceFan, Simulated: true,
		TaskDuration: s.TaskDur, ReduceDuration: s.ReduceDur,
	}
}

// kmConfig builds the simulated k-means profile (tasks ~45% heavier, as
// in Figure 7b's iteration-time ratio).
func (s Scale) kmConfig() kmeans.Config {
	return kmeans.Config{
		Partitions: s.Tasks, ReduceFan: s.ReduceFan, Simulated: true,
		TaskDuration: s.TaskDur * 145 / 100, ReduceDuration: s.ReduceDur,
	}
}

// idealLRIteration returns the no-control-plane iteration time: compute
// waves on the widest stage plus the reduction tree.
func (s Scale) idealLRIteration(workers int, taskDur time.Duration) time.Duration {
	waves := (s.Tasks + workers*s.Slots - 1) / (workers * s.Slots)
	l1 := s.Tasks / s.ReduceFan
	l1waves := (l1 + workers*s.Slots - 1) / (workers * s.Slots)
	return time.Duration(waves)*taskDur + time.Duration(l1waves)*s.ReduceDur + s.ReduceDur
}

// nimbusCluster starts an LR- and k-means-capable cluster.
func (s Scale) nimbusCluster(workers int, mode controller.Mode) (*cluster.Cluster, error) {
	reg := fn.NewRegistry()
	lr.Register(reg)
	kmeans.Register(reg)
	cost := time.Duration(0)
	if mode == controller.ModeCentral {
		cost = s.SparkPerTask
	}
	return cluster.Start(cluster.Options{
		Workers: workers, Slots: s.Slots, Latency: s.Latency,
		Mode: mode, CentralPerTaskCost: cost, LivePerTaskCost: s.NimbusPerTask,
		Registry: reg,
	})
}

// measuredJob bundles one running measurement setup.
type measuredJob struct {
	c *cluster.Cluster
	j *lr.Job
}

func (s Scale) startLR(workers int, mode controller.Mode) (*measuredJob, error) {
	c, err := s.nimbusCluster(workers, mode)
	if err != nil {
		return nil, err
	}
	d, err := c.Driver("bench")
	if err != nil {
		c.Stop()
		return nil, err
	}
	j, err := lr.Setup(d, s.lrConfig())
	if err != nil {
		c.Stop()
		return nil, err
	}
	return &measuredJob{c: c, j: j}, nil
}

func (m *measuredJob) stop() { m.c.Stop() }

// timeTemplatedIterations installs templates (if not yet) and measures the
// average iteration time over n instantiations.
func (m *measuredJob) timeTemplatedIterations(n int) (time.Duration, error) {
	if err := m.j.InstallTemplates(); err != nil {
		return 0, err
	}
	// Warm-up: first instantiation validates and patches.
	if err := m.j.Optimize(); err != nil {
		return 0, err
	}
	if err := m.j.D.Barrier(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := m.j.Optimize(); err != nil {
			return 0, err
		}
	}
	if err := m.j.D.Barrier(); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(n), nil
}

// timeUntemplatedIterations measures iteration time when every stage is
// submitted and scheduled afresh (templates off; used by Figures 1 and 9
// and the central baseline).
func (m *measuredJob) timeUntemplatedIterations(n int) (time.Duration, error) {
	// Warm-up one iteration.
	if err := m.j.SubmitOptimizeStages(); err != nil {
		return 0, err
	}
	if err := m.j.D.Barrier(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := m.j.SubmitOptimizeStages(); err != nil {
			return 0, err
		}
	}
	if err := m.j.D.Barrier(); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(n), nil
}

// lrStageSpecs builds the simulated LR iteration's stage specs against a
// static placement — the dataflow (Naiad-opt) baseline consumes these.
func (s Scale) lrStageSpecs(place interface {
	Define(v ids.VariableID, partitions int) ids.VariableID
}) []*proto.SubmitStage {
	const (
		vTData ids.VariableID = 1 + iota
		vCoeff
		vGrad
		vGSum
		vGNorm
	)
	place.Define(vTData, s.Tasks)
	place.Define(vCoeff, 1)
	place.Define(vGrad, s.Tasks)
	place.Define(vGSum, s.Tasks/s.ReduceFan)
	place.Define(vGNorm, 1)
	taskP := fn.SimParams(s.TaskDur)
	redP := fn.SimParams(s.ReduceDur)
	return []*proto.SubmitStage{
		{
			Stage: 1, Fn: fn.FuncSim, Tasks: s.Tasks, Params: taskP,
			Refs: []proto.VarRef{
				{Var: vTData, Pattern: proto.OnePerTask},
				{Var: vCoeff, Pattern: proto.Shared},
				{Var: vGrad, Write: true, Pattern: proto.OnePerTask},
			},
		},
		{
			Stage: 2, Fn: fn.FuncSim, Tasks: s.Tasks / s.ReduceFan, Params: redP,
			Refs: []proto.VarRef{
				{Var: vGrad, Pattern: proto.Grouped},
				{Var: vGSum, Write: true, Pattern: proto.OnePerTask},
			},
		},
		{
			Stage: 3, Fn: fn.FuncSim, Tasks: 1, Params: redP,
			Refs: []proto.VarRef{
				{Var: vGSum, Pattern: proto.Grouped},
				{Var: vCoeff, Pattern: proto.Shared},
				{Var: vCoeff, Write: true, Pattern: proto.Shared},
				{Var: vGNorm, Write: true, Pattern: proto.Shared},
			},
		},
	}
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// us formats a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// perTask divides accumulated nanos by a task count.
func perTask(nanos uint64, tasks int) time.Duration {
	if tasks <= 0 {
		return 0
	}
	return time.Duration(nanos / uint64(tasks))
}
