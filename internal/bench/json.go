// JSON report output: cmd/nimbus-bench -json writes the regenerated
// tables plus a fixed set of hot-path micro-benchmarks (ns/op and
// allocs/op via testing.Benchmark) as a machine-readable document, so the
// perf trajectory is diffable across PRs instead of living only in
// scrollback. The committed BENCH_<n>.json files at the repo root are
// these documents, one per growth PR.

package bench

import (
	"encoding/json"
	"io"
	"testing"

	"nimbus/internal/command"
	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/worker"
)

// Report is the JSON document cmd/nimbus-bench -json emits.
type Report struct {
	Scale  string        `json:"scale"`
	Tables []TableJSON   `json:"tables"`
	Micro  []BenchResult `json:"micro"`
}

// TableJSON is one regenerated table in machine-readable form.
type TableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// BenchResult is one micro-benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// WriteJSON renders tables and micro-benchmark results as an indented
// JSON report.
func WriteJSON(w io.Writer, scale string, tables []*Table, micro []BenchResult) error {
	rep := Report{Scale: scale, Micro: micro}
	for _, t := range tables {
		rep.Tables = append(rep.Tables, TableJSON{
			ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Micro runs the hot-path micro-benchmarks behind Tables 1/2 — the
// tightest loops whose regressions the tables would smear across cluster
// noise — under testing.Benchmark and returns ns/op + allocs/op for each.
func Micro() []BenchResult {
	specs := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"MarshalSteadyState", microMarshalSteadyState},
		{"UnmarshalSteadyState", microUnmarshalSteadyState},
		{"TemplateApplyEffects", microApplyEffects},
		{"TemplateValidate", microValidate},
		{"WorkerMaterialize", microMaterialize},
		{"WorkerInstantiateCompiled", microWorkerInstantiate},
	}
	out := make([]BenchResult, 0, len(specs))
	for _, s := range specs {
		r := testing.Benchmark(s.fn)
		out = append(out, BenchResult{
			Name:        s.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// microStages is the LR-shaped stage triple (gradient, reduce, apply) the
// micro-benchmarks build, matching the root bench_test.go shapes.
func microStages(parts, fan int) []*proto.SubmitStage {
	return []*proto.SubmitStage{
		{Stage: 1, Fn: fn.FuncSim, Tasks: parts,
			Refs: []proto.VarRef{
				{Var: 1, Pattern: proto.OnePerTask},
				{Var: 2, Pattern: proto.Shared},
				{Var: 3, Write: true, Pattern: proto.OnePerTask},
			}},
		{Stage: 2, Fn: fn.FuncSim, Tasks: parts / fan,
			Refs: []proto.VarRef{
				{Var: 3, Pattern: proto.Grouped},
				{Var: 4, Write: true, Pattern: proto.OnePerTask},
			}},
		{Stage: 3, Fn: fn.FuncSim, Tasks: 1,
			Refs: []proto.VarRef{
				{Var: 4, Pattern: proto.Grouped},
				{Var: 2, Pattern: proto.Shared},
				{Var: 2, Write: true, Pattern: proto.Shared},
			}},
	}
}

func microAssignment(workers, parts, fan int) (*core.Assignment, *flow.Directory, map[ids.WorkerID]*flow.Ledger) {
	place := core.NewStaticPlacement(workers)
	place.Define(1, parts)
	place.Define(2, 1)
	place.Define(3, parts)
	place.Define(4, parts/fan)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	bld := core.NewBuilder(dir, place)
	for _, s := range microStages(parts, fan) {
		if err := bld.AddStage(s); err != nil {
			panic(err)
		}
	}
	a := bld.Finalize(1)
	ledgers := make(map[ids.WorkerID]*flow.Ledger, workers)
	for w := 1; w <= workers; w++ {
		ledgers[ids.WorkerID(w)] = flow.NewLedger(ids.WorkerID(w))
	}
	for _, pc := range a.Preconds {
		if dir.Latest(pc.Logical) == 0 {
			dir.RecordWrite(pc.Logical, pc.Worker)
		} else if !dir.IsLatest(pc.Logical, pc.Worker) {
			dir.RecordCopy(pc.Logical, pc.Worker)
		}
	}
	return a, dir, ledgers
}

func microMarshalSteadyState(b *testing.B) {
	msg := &proto.InstantiateTemplate{
		Template: 7, Instance: 941, Base: 1 << 40, DoneWatermark: 1<<40 - 8101,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := proto.GetBuf()
		buf = proto.MarshalAppend(buf, msg)
		proto.PutBuf(buf)
	}
}

func microUnmarshalSteadyState(b *testing.B) {
	raw := proto.Marshal(&proto.InstantiateTemplate{
		Template: 7, Instance: 941, Base: 1 << 40, DoneWatermark: 1<<40 - 8101,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func microApplyEffects(b *testing.B) {
	a, dir, ledgers := microAssignment(16, 1024, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ApplyEffects(ids.CommandID(uint64(i+1)*100000), dir, ledgers)
	}
}

func microValidate(b *testing.B) {
	a, dir, _ := microAssignment(16, 1024, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := a.Validate(dir); len(v) != 0 {
			b.Fatalf("violations: %d", len(v))
		}
	}
}

func microMaterialize(b *testing.B) {
	a, _, _ := microAssignment(16, 1024, 8)
	idxs := a.PerWorker[1]
	entries := make([]*command.TemplateEntry, len(idxs))
	for i, idx := range idxs {
		entries[i] = &a.Entries[idx]
	}
	out := make([]command.Command, len(entries))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := ids.CommandID(uint64(i+1) * 100000)
		for j, e := range entries {
			e.Materialize(base, nil, &out[j])
		}
	}
}

func microWorkerInstantiate(b *testing.B) {
	const n = 1024
	entries := make([]command.TemplateEntry, n)
	for i := range entries {
		entries[i] = command.TemplateEntry{
			Index: int32(i), Kind: command.Destroy,
			Writes:    []ids.ObjectID{ids.ObjectID(i + 1)},
			ParamSlot: command.NoParamSlot,
		}
		if i > 0 {
			entries[i].BeforeIdx = []int32{0}
		}
	}
	bl := worker.NewBenchLoop(1)
	defer bl.Close()
	bl.Apply(&proto.InstallTemplate{Template: 1, Name: "bench", Entries: entries})
	span := uint64(n)
	run := func(i uint64) {
		bl.Apply(&proto.InstantiateTemplate{
			Template: 1, Instance: i + 1, Base: ids.CommandID(1 + i*span),
			DoneWatermark: ids.CommandID(1 + i*span),
		})
	}
	for i := uint64(0); i < 8; i++ {
		run(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(uint64(i) + 8)
	}
}
