package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/cluster"
	"nimbus/internal/driver"
	"nimbus/internal/fn"
)

// FrontDoor measures the driver front door: a thundering herd of
// lightweight sessions multiplexed over at most 16 shared connections to
// one controller. Each row reports, for one herd size, how long full
// admission took, the controller's admission-latency quantiles (stamped
// from frame decode to ack, so event-loop queueing counts), the
// loop-iteration p99 of a predicate loop running concurrently with the
// herd, and the session fan-in per shared connection.
func FrontDoor(s Scale) (*Table, error) {
	t := &Table{
		ID:    "frontdoor",
		Title: "Driver front door: session multiplexing and bounded admission",
		Columns: []string{
			"sessions", "conns", "sess/conn", "admit-all(ms)",
			"adm p50(us)", "adm p99(us)", "loop p99(us)", "failed",
		},
		Notes: []string{
			"each session registers through the shared-connection gateway, runs one put+submit+barrier, and closes",
			"a predicate loop on a dedicated connection runs across the herd; its p99 shows control-loop interference",
			fmt.Sprintf("gateway capped at %d shared connections; 4 workers", driver.DefaultMaxConns),
		},
	}
	for _, n := range s.FrontDoorSessions {
		row, err := s.runFrontDoor(n)
		if err != nil {
			return nil, fmt.Errorf("frontdoor %d sessions: %w", n, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (s Scale) runFrontDoor(n int) ([]string, error) {
	c, err := cluster.Start(cluster.Options{
		Workers: 4, Slots: s.Slots, Registry: fn.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	gw := c.Gateway(driver.DefaultMaxConns)
	defer gw.Close()

	// The interference probe: a controller-evaluated predicate loop over a
	// templated nop block, on its own dedicated connection. probe is never
	// written, so the predicate holds until the iteration bound.
	ld, err := c.Driver("frontdoor-loop")
	if err != nil {
		return nil, err
	}
	defer ld.Close()
	probe, err := ld.DefineVariable("probe", 1)
	if err != nil {
		return nil, err
	}
	lx, err := ld.DefineVariable("lx", 1)
	if err != nil {
		return nil, err
	}
	if err := ld.PutFloats(probe, 0, []float64{1}); err != nil {
		return nil, err
	}
	if err := ld.BeginTemplate("fd-loop"); err != nil {
		return nil, err
	}
	if err := ld.Submit(fn.FuncNop, 1, nil, lx.Read(), lx.Write()); err != nil {
		return nil, err
	}
	if err := ld.EndTemplate("fd-loop"); err != nil {
		return nil, err
	}
	loopRes := ld.InstantiateWhileAsync("fd-loop", probe.AtLeast(0, 0.5), s.FrontDoorLoopIters)

	var failed atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	admitted := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			d, err := driver.ConnectOpts(context.Background(), gw, cluster.ControlAddr, driver.Opts{
				Name:   fmt.Sprintf("fd-%d", i),
				Tenant: fmt.Sprintf("t%d", i%4),
			})
			if err != nil {
				failed.Add(1)
				admitted <- struct{}{}
				return
			}
			admitted <- struct{}{}
			x, err := d.DefineVariable("x", 1)
			if err == nil {
				err = d.PutFloats(x, 0, []float64{float64(i)})
			}
			if err == nil {
				err = d.Submit(fn.FuncNop, 1, nil, x.Read(), x.Write())
			}
			if err == nil {
				err = d.Barrier()
			}
			if err != nil {
				failed.Add(1)
			}
			if d.Close() != nil {
				failed.Add(1)
			}
		}(i)
	}
	// admit-all is registration-to-ack for the whole herd, not job runtime.
	for i := 0; i < n; i++ {
		<-admitted
	}
	admitAll := time.Since(start)
	wg.Wait()
	if res, err := loopRes.Wait(); err != nil {
		return nil, fmt.Errorf("predicate loop: %w", err)
	} else if res.Iters != s.FrontDoorLoopIters {
		return nil, fmt.Errorf("predicate loop ran %d iterations, want %d", res.Iters, s.FrontDoorLoopIters)
	}

	fs := c.Controller.FrontDoorStats()
	conns := gw.Conns()
	if conns < 1 {
		conns = 1
	}
	return []string{
		fmt.Sprint(n),
		fmt.Sprint(conns),
		fmt.Sprintf("%.0f", float64(n)/float64(conns)),
		ms(admitAll),
		us(fs.AdmissionP50),
		us(fs.AdmissionP99),
		us(fs.LoopIterP99),
		fmt.Sprint(failed.Load()),
	}, nil
}
