package bench

import (
	"fmt"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/app/lr"
	"nimbus/internal/app/water"
	"nimbus/internal/baseline/dataflow"
	"nimbus/internal/baseline/mpi"
	"nimbus/internal/cluster"
	"nimbus/internal/controller"
	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
)

// Fig1 reproduces Figure 1: logistic regression under a centralized
// per-task scheduler (Spark-like). Computation time shrinks with more
// workers but the control plane grows, so completion time does not.
func Fig1(s Scale) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Control plane bottleneck: LR under the central (Spark-like) scheduler",
		Columns: []string{"workers", "iteration(ms)", "compute(ms)", "control(ms)"},
		Notes: []string{
			fmt.Sprintf("central per-task scheduling cost modeled at %v (paper-measured Spark 2.0 value)", s.SparkPerTask),
			"paper shape: compute shrinks with workers, completion time grows",
		},
	}
	for _, w := range s.Fig1Workers {
		m, err := s.startLR(w, controller.ModeCentral)
		if err != nil {
			return nil, err
		}
		iter, err := m.timeUntemplatedIterations(s.Iterations)
		m.stop()
		if err != nil {
			return nil, err
		}
		ideal := s.idealLRIteration(w, s.TaskDur)
		ctrl := iter - ideal
		if ctrl < 0 {
			ctrl = 0
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), ms(iter), ms(ideal), ms(ctrl),
		})
	}
	return t, nil
}

// Table1 reproduces Table 1: template installation costs per task,
// against the cost of centrally scheduling a task.
func Table1(s Scale) (*Table, error) {
	workers := s.Workers[len(s.Workers)-1]
	m, err := s.startLR(workers, controller.ModeNimbus)
	if err != nil {
		return nil, err
	}
	defer m.stop()
	// Plain scheduling baseline: one untemplated iteration.
	if _, err := m.timeUntemplatedIterations(1); err != nil {
		return nil, err
	}
	schedNanos := m.c.Controller.Stats.ScheduleNanos.Load()
	schedTasks := int(m.c.Controller.Stats.TasksScheduled.Load())

	// Recorded install.
	if err := m.j.InstallTemplates(); err != nil {
		return nil, err
	}
	if err := m.j.D.Barrier(); err != nil {
		return nil, err
	}
	tasks := 0
	m.c.Controller.Do(func() {
		for _, name := range []string{lr.OptimizeBlock, lr.EstimateBlock} {
			if t := m.c.Controller.TemplateByName(name); t != nil {
				tasks += t.TaskCount
			}
		}
	})
	// Controller-template construction now runs off the event loop:
	// RecordNanos covers on-loop stage capture, BuildNanos the background
	// assignment build.
	record := perTask(m.c.Controller.Stats.RecordNanos.Load()+
		m.c.Controller.Stats.BuildNanos.Load(), tasks)
	finalize := perTask(m.c.Controller.Stats.FinalizeNanos.Load(), tasks)
	var wInstall uint64
	for _, w := range m.c.Workers {
		wInstall += w.Stats.InstallNanos.Load()
	}
	t := &Table{
		ID:      "table1",
		Title:   "Template installation is fast compared to scheduling (per-task costs)",
		Columns: []string{"operation", "per-task cost(us)"},
		Rows: [][]string{
			{"Installing controller template", us(record)},
			{"Installing worker template on controller", us(finalize)},
			{"Installing worker template on worker", us(perTask(wInstall, tasks))},
			{"Nimbus schedule task (no templates)", us(perTask(schedNanos, schedTasks))},
			{"Spark schedule task (modeled)", us(s.SparkPerTask)},
		},
		Notes: []string{fmt.Sprintf("%d tasks across %d workers", tasks, workers)},
	}
	return t, nil
}

// Table2 reproduces Table 2: template instantiation costs per task for
// the auto-validated (tight loop) and fully validated (control-flow
// switch) cases, plus the implied scheduling throughput.
func Table2(s Scale) (*Table, error) {
	workers := s.Workers[len(s.Workers)-1]
	m, err := s.startLR(workers, controller.ModeNimbus)
	if err != nil {
		return nil, err
	}
	defer m.stop()
	if err := m.j.InstallTemplates(); err != nil {
		return nil, err
	}
	if err := m.j.D.Barrier(); err != nil {
		return nil, err
	}
	var taskCount int
	m.c.Controller.Do(func() {
		taskCount = m.c.Controller.TemplateByName(lr.OptimizeBlock).TaskCount
	})

	snapshot := func() (ctrlNanos, valNanos, wNanos uint64, insts, wCmds uint64) {
		ctrlNanos = m.c.Controller.Stats.InstantiateNanos.Load()
		valNanos = m.c.Controller.Stats.ValidateNanos.Load()
		insts = m.c.Controller.Stats.Instantiations.Load()
		for _, w := range m.c.Workers {
			wNanos += w.Stats.InstantiateNanos.Load()
			wCmds += w.Stats.InstantiateCmds.Load()
		}
		return
	}

	// Tight loop: repeated instantiation of one block auto-validates.
	const n = 20
	if err := m.j.Optimize(); err != nil { // warm-up (patches)
		return nil, err
	}
	if err := m.j.D.Barrier(); err != nil {
		return nil, err
	}
	c0, _, w0, i0, k0 := snapshot()
	for i := 0; i < n; i++ {
		if err := m.j.Optimize(); err != nil {
			return nil, err
		}
	}
	if err := m.j.D.Barrier(); err != nil {
		return nil, err
	}
	c1, _, w1, i1, k1 := snapshot()
	autoCtrl := perTask(c1-c0, int(i1-i0)*taskCount)
	autoWorker := perTask(w1-w0, int(i1-i0)*taskCount)
	// Per materialized command (tasks and copies), the worker-side cost of
	// the compiled fast path — the per-instance instantiation cost
	// cmd/nimbus-bench reports alongside the paper's per-task figures.
	perCmd := perTask(w1-w0, int(k1-k0))

	// Control-flow switches: alternating blocks force full validation.
	c2, v2, w2, i2, _ := snapshot()
	for i := 0; i < n; i++ {
		if err := m.j.Optimize(); err != nil {
			return nil, err
		}
		if err := m.j.Estimate(); err != nil {
			return nil, err
		}
	}
	if err := m.j.D.Barrier(); err != nil {
		return nil, err
	}
	c3, v3, w3, i3, _ := snapshot()
	valCtrl := perTask((c3-c2)+(v3-v2), int(i3-i2)*taskCount)
	valWorker := perTask(w3-w2, int(i3-i2)*taskCount)

	autoTotal := autoCtrl + autoWorker
	throughput := float64(0)
	if autoTotal > 0 {
		throughput = float64(time.Second) / float64(autoTotal)
	}
	t := &Table{
		ID:      "table2",
		Title:   "Template instantiation is fast (per-task costs)",
		Columns: []string{"operation", "per-task cost(us)"},
		Rows: [][]string{
			{"Instantiate controller template", us(autoCtrl)},
			{"Instantiate worker template (auto-validation)", us(autoWorker)},
			{"Instantiate worker template (validation)", us(valCtrl + valWorker)},
			{"Worker materialize per command (compiled path)", us(perCmd)},
		},
		Notes: []string{
			fmt.Sprintf("implied steady-state scheduling throughput: %.0f tasks/second", throughput),
			"paper: 0.2us + 1.7us auto (>500k tasks/s), 7.5us validated (~130k tasks/s)",
		},
	}

	// Driver iteration RTTs (driver API v2): the v1 Get loop pays one
	// driver↔controller round trip per iteration; a controller-evaluated
	// predicate loop pays one per loop. The probe variable is Put once
	// and never written by the block, so the predicate always holds and
	// the loop runs to its iteration bound.
	probe, err := m.j.D.DefineVariable("table2/rtt-probe", 1)
	if err != nil {
		return nil, err
	}
	if err := m.j.D.PutFloats(probe, 0, []float64{1}); err != nil {
		return nil, err
	}
	const loopIters = 20
	res, err := m.j.D.InstantiateWhile(lr.OptimizeBlock, probe.AtLeast(0, 0.5), loopIters)
	if err != nil {
		return nil, err
	}
	if res.Iters != loopIters {
		return nil, fmt.Errorf("table2: predicate loop ran %d iterations, want %d", res.Iters, loopIters)
	}
	t.Rows = append(t.Rows,
		[]string{"Driver iteration RTTs (v1 Get loop)", "1.00 /iter"},
		[]string{"Driver iteration RTTs (predicate loop)", fmt.Sprintf("%.2f /iter", 1/float64(res.Iters))},
	)
	return t, nil
}

// Table3 reproduces Table 3: edits cost proportional to the change, while
// the static-dataflow baseline pays a full reinstall for any change.
func Table3(s Scale) (*Table, error) {
	workers := s.Workers[len(s.Workers)-1]
	m, err := s.startLR(workers, controller.ModeNimbus)
	if err != nil {
		return nil, err
	}
	defer m.stop()
	if err := m.j.InstallTemplates(); err != nil {
		return nil, err
	}
	if err := m.j.Optimize(); err != nil {
		return nil, err
	}
	if err := m.j.D.Barrier(); err != nil {
		return nil, err
	}

	// Control traffic of the original installation for the bytes column.
	installBytes := m.c.Controller.Stats.BytesToWorkers.Load()

	// steadyBytes measures the control bytes of one instantiation.
	steadyBytes := func() (uint64, error) {
		b0 := m.c.Controller.Stats.BytesToWorkers.Load()
		if err := m.j.Optimize(); err != nil {
			return 0, err
		}
		if err := m.j.D.Barrier(); err != nil {
			return 0, err
		}
		return m.c.Controller.Stats.BytesToWorkers.Load() - b0, nil
	}
	base, err := steadyBytes()
	if err != nil {
		return nil, err
	}
	// migrate measures the controller's edit-generation wall time and the
	// extra control bytes the edit-carrying instantiation ships over a
	// steady-state one — the quantity that scales with the change size.
	migrate := func(parts []int) (time.Duration, uint64, error) {
		var dst ids.WorkerID
		var migErr error
		start := time.Now()
		m.c.Controller.Do(func() {
			actives := m.c.Controller.ActiveWorkers()
			dst = actives[0]
			migErr = m.c.Controller.Migrate(
				[]ids.VariableID{m.j.TData.ID, m.j.Grad.ID}, parts, dst)
		})
		elapsed := time.Since(start)
		if migErr != nil {
			return 0, 0, migErr
		}
		bytes, err := steadyBytes()
		if err != nil {
			return 0, 0, err
		}
		if bytes > base {
			bytes -= base
		} else {
			bytes = 0
		}
		return elapsed, bytes, nil
	}

	oneEdit, oneBytes, err := migrate([]int{1})
	if err != nil {
		return nil, err
	}
	fivePct := s.Tasks / 20
	parts := make([]int, 0, fivePct)
	for p := 2; p < 2+fivePct; p++ {
		parts = append(parts, p%s.Tasks)
	}
	bulk, bulkBytes, err := migrate(parts)
	if err != nil {
		return nil, err
	}

	// Full installation cost: record + off-loop build + finalize + worker
	// installs.
	installNanos := m.c.Controller.Stats.RecordNanos.Load() +
		m.c.Controller.Stats.BuildNanos.Load() +
		m.c.Controller.Stats.FinalizeNanos.Load()
	for _, w := range m.c.Workers {
		installNanos += w.Stats.InstallNanos.Load()
	}

	// Naiad any change: measured full dataflow reinstall.
	rt, err := dataflow.New(dataflow.Config{
		Workers: workers, Slots: s.Slots, Latency: s.Latency,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	place := core.NewStaticPlacement(workers)
	stages := s.lrStageSpecs(place)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	naiadInstall, err := rt.Install(stages, place, dir)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "table3",
		Title:   "Edits cost scales with the change; static dataflow pays full reinstall",
		Columns: []string{"operation", "controller(ms)", "control bytes"},
		Rows: [][]string{
			{"Nimbus single edit (1 task migrated)", ms(oneEdit), fmt.Sprint(oneBytes)},
			{fmt.Sprintf("Nimbus 5%% task migration (%d tasks)", fivePct), ms(bulk), fmt.Sprint(bulkBytes)},
			{"Nimbus complete installation (all tasks)", ms(time.Duration(installNanos)), fmt.Sprint(installBytes)},
			{"Naiad-style any change (full graph reinstall)", ms(naiadInstall), "full graph"},
		},
		Notes: []string{
			"paper: 41us single edit, 35ms for 800 edits, 203ms full install, 230ms Naiad",
			"control bytes shipped scale with the edit; this implementation's edit *generation* rebuilds and diffs the template (O(template)) on the controller",
		},
	}
	return t, nil
}

// Fig7 reproduces Figure 7: LR and k-means iteration times across worker
// counts for the three systems.
func Fig7(s Scale) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Iteration time: Spark-opt vs Naiad-opt vs Nimbus (LR and k-means)",
		Columns: []string{"app", "workers", "spark-opt(ms)", "naiad-opt(ms)", "nimbus(ms)", "compute(ms)"},
		Notes: []string{
			"paper shape: Nimbus ~= Naiad and both scale; Spark is 70-100% slower at the low end and 15-23x at 100 workers",
		},
	}
	for _, app := range []string{"lr", "kmeans"} {
		taskDur := s.TaskDur
		if app == "kmeans" {
			taskDur = s.TaskDur * 145 / 100
		}
		for _, w := range s.Workers {
			spark, err := s.runCentralIteration(app, w)
			if err != nil {
				return nil, err
			}
			naiad, err := s.runDataflowIteration(app, w)
			if err != nil {
				return nil, err
			}
			nimbus, err := s.runNimbusIteration(app, w)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				app, fmt.Sprint(w), ms(spark), ms(naiad), ms(nimbus),
				ms(s.idealLRIteration(w, taskDur)),
			})
		}
	}
	return t, nil
}

func (s Scale) runNimbusIteration(app string, workers int) (time.Duration, error) {
	if app == "kmeans" {
		return s.runKMeansNimbus(workers)
	}
	m, err := s.startLR(workers, controller.ModeNimbus)
	if err != nil {
		return 0, err
	}
	defer m.stop()
	return m.timeTemplatedIterations(s.Iterations)
}

func (s Scale) runCentralIteration(app string, workers int) (time.Duration, error) {
	if app == "kmeans" {
		return s.runKMeansCentral(workers)
	}
	m, err := s.startLR(workers, controller.ModeCentral)
	if err != nil {
		return 0, err
	}
	defer m.stop()
	return m.timeUntemplatedIterations(s.Iterations)
}

func (s Scale) runDataflowIteration(app string, workers int) (time.Duration, error) {
	rt, err := dataflow.New(dataflow.Config{
		Workers: workers, Slots: s.Slots, Latency: s.Latency,
	})
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	place := core.NewStaticPlacement(workers)
	scale := s
	if app == "kmeans" {
		scale.TaskDur = s.TaskDur * 145 / 100
	}
	stages := scale.lrStageSpecs(place)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	if _, err := rt.Install(stages, place, dir); err != nil {
		return 0, err
	}
	if _, err := rt.RunIteration(); err != nil { // warm-up
		return 0, err
	}
	var total time.Duration
	for i := 0; i < s.Iterations; i++ {
		d, err := rt.RunIteration()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(s.Iterations), nil
}

func (s Scale) runKMeansNimbus(workers int) (time.Duration, error) {
	c, err := s.nimbusCluster(workers, controller.ModeNimbus)
	if err != nil {
		return 0, err
	}
	defer c.Stop()
	d, err := c.Driver("bench")
	if err != nil {
		return 0, err
	}
	j, err := kmeans.Setup(d, s.kmConfig())
	if err != nil {
		return 0, err
	}
	if err := j.InstallTemplate(); err != nil {
		return 0, err
	}
	if err := j.Iterate(); err != nil { // warm-up
		return 0, err
	}
	if err := d.Barrier(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < s.Iterations; i++ {
		if err := j.Iterate(); err != nil {
			return 0, err
		}
	}
	if err := d.Barrier(); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(s.Iterations), nil
}

func (s Scale) runKMeansCentral(workers int) (time.Duration, error) {
	c, err := s.nimbusCluster(workers, controller.ModeCentral)
	if err != nil {
		return 0, err
	}
	defer c.Stop()
	d, err := c.Driver("bench")
	if err != nil {
		return 0, err
	}
	j, err := kmeans.Setup(d, s.kmConfig())
	if err != nil {
		return 0, err
	}
	if err := j.SubmitIterationStages(); err != nil { // warm-up
		return 0, err
	}
	if err := d.Barrier(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < s.Iterations; i++ {
		if err := j.SubmitIterationStages(); err != nil {
			return 0, err
		}
	}
	if err := d.Barrier(); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(s.Iterations), nil
}

// Fig8 reproduces Figure 8: task throughput of Nimbus vs the central
// baseline as workers increase. The central dispatcher saturates; Nimbus
// grows with the parallelism the job demands.
func Fig8(s Scale) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Task throughput vs workers (tasks/second)",
		Columns: []string{"workers", "spark-opt", "nimbus"},
		Notes: []string{
			"paper shape: Spark saturates ~6k tasks/s; Nimbus reaches 128k tasks/s at 100 workers",
		},
	}
	tasksPerIter := s.Tasks + s.Tasks/s.ReduceFan + 1
	for _, w := range s.Workers {
		mc, err := s.startLR(w, controller.ModeCentral)
		if err != nil {
			return nil, err
		}
		citer, err := mc.timeUntemplatedIterations(s.Iterations)
		mc.stop()
		if err != nil {
			return nil, err
		}
		mn, err := s.startLR(w, controller.ModeNimbus)
		if err != nil {
			return nil, err
		}
		niter, err := mn.timeTemplatedIterations(s.Iterations)
		mn.stop()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w),
			fmt.Sprintf("%.0f", float64(tasksPerIter)/citer.Seconds()),
			fmt.Sprintf("%.0f", float64(tasksPerIter)/niter.Seconds()),
		})
	}
	return t, nil
}

// Fig9 reproduces Figure 9: the adaptation timeline — templates manually
// disabled, then installed, then half the workers are revoked and later
// returned.
func Fig9(s Scale) (*Table, error) {
	workers := s.Workers[len(s.Workers)-1]
	m, err := s.startLR(workers, controller.ModeNimbus)
	if err != nil {
		return nil, err
	}
	defer m.stop()
	t := &Table{
		ID:      "fig9",
		Title:   "Dynamic adaptation timeline (per-iteration times)",
		Columns: []string{"iteration", "time(ms)", "event"},
		Notes: []string{
			"paper shape: slow without templates; fast after install; doubled compute on half the workers; revalidation spike on restore",
		},
	}
	iterate := func(idx int, f func() error, event string) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		if err := m.j.D.Barrier(); err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(idx), ms(time.Since(start)), event})
		return nil
	}
	idx := 1
	// Iterations 1-4: templates disabled (per-stage scheduling).
	for i := 0; i < 4; i++ {
		ev := ""
		if i == 0 {
			ev = "templates disabled"
		}
		if err := iterate(idx, m.j.SubmitOptimizeStages, ev); err != nil {
			return nil, err
		}
		idx++
	}
	// Iteration 5: recording (executes once while installing).
	if err := iterate(idx, func() error {
		if err := m.j.D.BeginTemplate(lr.OptimizeBlock); err != nil {
			return err
		}
		if err := m.j.SubmitOptimizeStages(); err != nil {
			return err
		}
		return m.j.D.EndTemplate(lr.OptimizeBlock)
	}, "installing templates"); err != nil {
		return nil, err
	}
	idx++
	// Iterations 6-9: instantiation.
	for i := 0; i < 4; i++ {
		if err := iterate(idx, m.j.Optimize, ""); err != nil {
			return nil, err
		}
		idx++
	}
	// Revoke half the workers.
	var all []ids.WorkerID
	m.c.Controller.Do(func() { all = m.c.Controller.ActiveWorkers() })
	var resErr error
	m.c.Controller.Do(func() { resErr = m.c.Controller.SetActive(all[:len(all)/2]) })
	if resErr != nil {
		return nil, resErr
	}
	for i := 0; i < 4; i++ {
		ev := ""
		if i == 0 {
			ev = fmt.Sprintf("resource manager revokes %d workers", len(all)-len(all)/2)
		}
		if err := iterate(idx, m.j.Optimize, ev); err != nil {
			return nil, err
		}
		idx++
	}
	// Restore all workers: cached templates revalidate.
	m.c.Controller.Do(func() { resErr = m.c.Controller.SetActive(all) })
	if resErr != nil {
		return nil, resErr
	}
	for i := 0; i < 4; i++ {
		ev := ""
		if i == 0 {
			ev = "workers restored; cached templates revalidated"
		}
		if err := iterate(idx, m.j.Optimize, ev); err != nil {
			return nil, err
		}
		idx++
	}
	return t, nil
}

// Fig10 reproduces Figure 10: migrating 5% of tasks every 5 iterations.
// Nimbus pays per-edit costs; the static-dataflow baseline reinstalls the
// whole graph each time.
func Fig10(s Scale) (*Table, error) {
	workers := s.Workers[len(s.Workers)-1]
	const iters = 20
	t := &Table{
		ID:      "fig10",
		Title:   "Task migration every 5 iterations: cumulative time (s)",
		Columns: []string{"iteration", "nimbus(s)", "nimbus-mig(ms)", "naiad-opt(s)", "naiad-reinstall(ms)"},
		Notes: []string{
			"paper shape: Nimbus's edits are negligible; Naiad pays a full reinstall per migration and finishes ~2x slower",
			"the *-mig/-reinstall columns isolate the per-migration control cost; the reinstall grows with graph size (run -scale paper)",
		},
	}

	// Nimbus run.
	m, err := s.startLR(workers, controller.ModeNimbus)
	if err != nil {
		return nil, err
	}
	if err := m.j.InstallTemplates(); err != nil {
		m.stop()
		return nil, err
	}
	if err := m.j.Optimize(); err != nil {
		m.stop()
		return nil, err
	}
	if err := m.j.D.Barrier(); err != nil {
		m.stop()
		return nil, err
	}
	fivePct := s.Tasks / 20
	nimbusCum := make([]time.Duration, 0, iters)
	nimbusMig := make([]time.Duration, iters)
	var elapsed time.Duration
	for i := 1; i <= iters; i++ {
		start := time.Now()
		if i%5 == 0 {
			migStart := time.Now()
			parts := make([]int, 0, fivePct)
			for p := 0; p < fivePct; p++ {
				parts = append(parts, (i*7+p)%s.Tasks)
			}
			var dst ids.WorkerID
			var migErr error
			m.c.Controller.Do(func() {
				actives := m.c.Controller.ActiveWorkers()
				dst = actives[i%len(actives)]
				migErr = m.c.Controller.Migrate(
					[]ids.VariableID{m.j.TData.ID, m.j.Grad.ID}, parts, dst)
			})
			if migErr != nil {
				m.stop()
				return nil, migErr
			}
			nimbusMig[i-1] = time.Since(migStart)
		}
		if err := m.j.Optimize(); err != nil {
			m.stop()
			return nil, err
		}
		if err := m.j.D.Barrier(); err != nil {
			m.stop()
			return nil, err
		}
		elapsed += time.Since(start)
		nimbusCum = append(nimbusCum, elapsed)
	}
	m.stop()

	// Dataflow run: any migration = full reinstall.
	rt, err := dataflow.New(dataflow.Config{
		Workers: workers, Slots: s.Slots, Latency: s.Latency,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	place := core.NewStaticPlacement(workers)
	stages := s.lrStageSpecs(place)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	if _, err := rt.Install(stages, place, dir); err != nil {
		return nil, err
	}
	naiadCum := make([]time.Duration, 0, iters)
	naiadRe := make([]time.Duration, iters)
	elapsed = 0
	for i := 1; i <= iters; i++ {
		start := time.Now()
		if i%5 == 0 {
			// The schedule change invalidates the graph: full reinstall
			// (a fresh directory models the new object placement).
			place.Reassign(1, i%s.Tasks, ids.WorkerID(1+i%workers))
			dir2 := flow.NewDirectory(&alloc)
			d, err := rt.Install(stages, place, dir2)
			if err != nil {
				return nil, err
			}
			naiadRe[i-1] = d
		}
		if _, err := rt.RunIteration(); err != nil {
			return nil, err
		}
		elapsed += time.Since(start)
		naiadCum = append(naiadCum, elapsed)
	}
	for i := 0; i < iters; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1),
			fmt.Sprintf("%.3f", nimbusCum[i].Seconds()),
			ms(nimbusMig[i]),
			fmt.Sprintf("%.3f", naiadCum[i].Seconds()),
			ms(naiadRe[i]),
		})
	}
	return t, nil
}

// Fig11 reproduces Figure 11: the water simulation under hand-written
// MPI, Nimbus with templates, and Nimbus without templates.
func Fig11(s Scale) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Water simulation frame time: MPI vs Nimbus vs Nimbus w/o templates",
		Columns: []string{"system", "frame(ms)", "vs MPI"},
		Notes: []string{
			"paper: MPI 31.7s, Nimbus 36.5s (+15%), Nimbus w/o templates 196.8s (+520%)",
		},
	}
	runNimbus := func(useTemplates bool) (time.Duration, error) {
		reg := fn.NewRegistry()
		water.Register(reg)
		c, err := cluster.Start(cluster.Options{
			Workers: s.WaterWorkers, Slots: s.Slots, Latency: s.Latency,
			LivePerTaskCost: s.NimbusPerTask, Registry: reg,
		})
		if err != nil {
			return 0, err
		}
		defer c.Stop()
		d, err := c.Driver("bench")
		if err != nil {
			return 0, err
		}
		rows := s.WaterParts * 4
		j, err := water.Setup(d, water.Config{
			Rows: rows, Cols: 8, Partitions: s.WaterParts,
			Simulated: true, SimSubsteps: s.WaterSubsteps,
			SimReinit: s.WaterReinit, SimJacobi: s.WaterJacobi,
			GridTaskDuration: s.WaterGridDur, ReduceTaskDuration: s.WaterReduceDur,
		})
		if err != nil {
			return 0, err
		}
		if useTemplates {
			if err := j.InstallTemplates(); err != nil {
				return 0, err
			}
			if err := d.Barrier(); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for f := 0; f < s.WaterFrames; f++ {
			if useTemplates {
				if _, err := j.RunFrame(f + 1); err != nil {
					return 0, err
				}
			} else {
				// Templates off: every stage is submitted and scheduled
				// afresh, substep by substep.
				for step := 0; step < s.WaterSubsteps; step++ {
					if err := j.SubmitPreStages(); err != nil {
						return 0, err
					}
					for i := 0; i < s.WaterReinit; i++ {
						if err := j.SubmitReinitStages(); err != nil {
							return 0, err
						}
					}
					if err := j.SubmitMidStages(); err != nil {
						return 0, err
					}
					for i := 0; i < s.WaterJacobi; i++ {
						if err := j.SubmitJacobiStages(); err != nil {
							return 0, err
						}
					}
					if err := j.SubmitPostStages(); err != nil {
						return 0, err
					}
				}
			}
		}
		if err := d.Barrier(); err != nil {
			return 0, err
		}
		return time.Since(start) / time.Duration(s.WaterFrames), nil
	}

	comm, err := mpi.NewComm(s.WaterWorkers, s.Latency)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, err = mpi.RunWaterSubsteps(comm, mpi.WaterProfile{
		StripsPerRank: s.WaterParts / s.WaterWorkers, Slots: s.Slots,
		GridTaskDuration: s.WaterGridDur, ReduceTaskDuration: s.WaterReduceDur,
		Substeps:    s.WaterSubsteps * s.WaterFrames,
		ReinitIters: s.WaterReinit, JacobiIters: s.WaterJacobi,
	})
	comm.Close()
	if err != nil {
		return nil, err
	}
	mpiFrame := time.Since(start) / time.Duration(s.WaterFrames)

	withT, err := runNimbus(true)
	if err != nil {
		return nil, err
	}
	withoutT, err := runNimbus(false)
	if err != nil {
		return nil, err
	}
	rel := func(d time.Duration) string {
		return fmt.Sprintf("%+.0f%%", 100*(d.Seconds()/mpiFrame.Seconds()-1))
	}
	t.Rows = [][]string{
		{"MPI (hand-tuned, static)", ms(mpiFrame), "+0%"},
		{"Nimbus with templates", ms(withT), rel(withT)},
		{"Nimbus w/o templates", ms(withoutT), rel(withoutT)},
	}
	return t, nil
}

// Shuffle measures the streaming data plane: a grouped stage pulls every
// partition to one worker, so each remote partition crosses a
// worker→worker link as a chunked, credit-controlled transfer. Configs
// vary chunk size, force receiver spill with a tight receive budget, and
// toggle per-chunk flate compression; each row reports the shuffle time
// and the per-link goodput.
func Shuffle(s Scale) (*Table, error) {
	t := &Table{
		ID:      "shuffle",
		Title:   "Streaming data plane: shuffle time and per-link goodput",
		Columns: []string{"config", "moved(MiB)", "shuffle(ms)", "GB/s/link", "chunks", "spills"},
		Notes: []string{
			fmt.Sprintf("%d partitions x %d MiB over %d workers; one grouped task pulls all partitions",
				s.ShuffleParts, s.ShufflePartBytes>>20, s.ShuffleWorkers),
			"GB/s/link divides cross-worker bytes by shuffle time and inbound links (workers-1)",
			"spill rows bound receiver memory at a quarter partition, forcing reassembly through disk",
		},
	}
	configs := []struct {
		name     string
		chunk    int
		budget   int64
		compress bool
	}{
		{"chunk=256KiB", 256 << 10, 0, false},
		{"chunk=64KiB", 64 << 10, 0, false},
		{"chunk=256KiB spill", 256 << 10, int64(s.ShufflePartBytes) / 4, false},
		{"chunk=256KiB flate", 256 << 10, 0, true},
	}
	for _, cfg := range configs {
		moved, elapsed, chunks, spills, err := s.runShuffle(cfg.chunk, cfg.budget, cfg.compress)
		if err != nil {
			return nil, fmt.Errorf("shuffle %s: %w", cfg.name, err)
		}
		links := s.ShuffleWorkers - 1
		if links < 1 {
			links = 1
		}
		gbPerLink := float64(moved) / elapsed.Seconds() / float64(links) / 1e9
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%.0f", float64(moved)/(1<<20)),
			ms(elapsed),
			fmt.Sprintf("%.2f", gbPerLink),
			fmt.Sprint(chunks),
			fmt.Sprint(spills),
		})
	}
	return t, nil
}

// runShuffle runs one shuffle configuration and returns the cross-worker
// bytes moved, wall time, chunks received, and receiver spills.
func (s Scale) runShuffle(chunk int, budget int64, compress bool) (uint64, time.Duration, uint64, uint64, error) {
	c, err := cluster.Start(cluster.Options{
		Workers: s.ShuffleWorkers, Slots: s.Slots, Latency: s.Latency,
		Registry:  fn.NewRegistry(),
		ChunkSize: chunk, RecvBudget: budget, CompressChunks: compress,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer c.Stop()
	d, err := c.Driver("shuffle")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer d.Close()
	x := d.MustVar("x", s.ShuffleParts)
	y := d.MustVar("y", 1)
	data := make([]byte, s.ShufflePartBytes)
	for i := range data {
		data[i] = byte((i*2654435761 + i>>9) >> 7)
	}
	put := func() error {
		for p := 0; p < s.ShuffleParts; p++ {
			if err := d.Put(x, p, data); err != nil {
				return err
			}
		}
		return nil
	}
	shuffle := func() error {
		if err := d.Submit(fn.FuncNop, 1, nil, x.ReadGrouped(), y.WriteShared()); err != nil {
			return err
		}
		return d.Barrier()
	}
	snapshot := func() (xfers, chunks, spills uint64) {
		for _, w := range c.Workers {
			xfers += w.Stats.XfersRecv.Load()
			chunks += w.Stats.ChunksRecv.Load()
			spills += w.Stats.Spills.Load()
		}
		return
	}
	// Warm-up round: first-touch allocation, pool fill, peer dials. Each
	// re-Put bumps every partition's version so the next round moves the
	// data again instead of validating cached copies. The fastest of three
	// measured rounds is reported — single rounds are dominated by
	// scheduler jitter at the 100µs latency model's scale.
	if err := put(); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := shuffle(); err != nil {
		return 0, 0, 0, 0, err
	}
	var moved, chunks, spills uint64
	var best time.Duration
	for round := 0; round < 3; round++ {
		if err := put(); err != nil {
			return 0, 0, 0, 0, err
		}
		x0, c0, s0 := snapshot()
		start := time.Now()
		if err := shuffle(); err != nil {
			return 0, 0, 0, 0, err
		}
		elapsed := time.Since(start)
		x1, c1, s1 := snapshot()
		if best == 0 || elapsed < best {
			best = elapsed
			moved = (x1 - x0) * uint64(s.ShufflePartBytes)
			chunks = c1 - c0
			spills = s1 - s0
		}
	}
	return moved, best, chunks, spills, nil
}

// All runs every experiment at the given scale.
func All(s Scale) ([]*Table, error) {
	runners := []func(Scale) (*Table, error){
		Fig1, Table1, Table2, Table3, Fig7, Fig8, Fig9, Fig10, Fig11, Shuffle, FrontDoor,
	}
	var out []*Table
	for _, r := range runners {
		t, err := r(s)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
