package bench

import (
	"bytes"
	"fmt"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

// Fleet measures the elastic worker lifecycle. Part one scales a running
// (real-compute) k-means job from 4 workers up to FleetGrowTo and back,
// one warm-gated join batch or graceful drain batch per iteration, and
// verifies the final centroids are bit-identical to a fixed-fleet run —
// elasticity changed placement, never results, with zero failed commands.
// Part two joins and drains a bare FleetSimWorkers-node fleet over the
// Mem transport to measure raw lifecycle throughput.
func Fleet(s Scale) (*Table, error) {
	t := &Table{
		ID:    "fleet",
		Title: "Elastic fleet: warm-gated joins and graceful drains mid-kmeans",
		Columns: []string{
			"workers", "event", "iter(ms)",
			"warm p50(ms)", "warm p99(ms)", "rebal p50(ms)", "rebal p99(ms)",
		},
	}

	cfg := kmeans.Config{Partitions: 64, K: 4, Dims: 4, PointsPerPart: s.FleetPoints, Seed: 42}
	sizes := fleetSizes(4, s.FleetGrowTo)
	// One iteration at the starting size, one after every resize phase.
	iters := 1 + 2*(len(sizes)-1)

	refCents, err := s.fleetReference(cfg, iters)
	if err != nil {
		return nil, fmt.Errorf("fleet reference: %w", err)
	}

	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Slots: s.Slots, Registry: reg})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	d, err := c.Driver("fleet-bench")
	if err != nil {
		return nil, err
	}
	defer d.Close()
	j, err := kmeans.Setup(d, cfg)
	if err != nil {
		return nil, err
	}
	if err := j.InstallTemplate(); err != nil {
		return nil, err
	}

	iterate := func() (time.Duration, error) {
		start := time.Now()
		if err := j.Iterate(); err != nil {
			return 0, err
		}
		if _, err := j.ShiftValue(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	row := func(workers int, event string, d time.Duration) {
		st := c.Controller.FleetStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(workers), event, ms(d),
			ms(st.WarmP50), ms(st.WarmP99), ms(st.RebalanceP50), ms(st.RebalanceP99),
		})
	}

	dur, err := iterate()
	if err != nil {
		return nil, err
	}
	row(4, "baseline", dur)

	// Grow 4 → FleetGrowTo, doubling each phase; every joiner is warmed
	// (all active templates installed and compiled) before taking traffic.
	for _, size := range sizes[1:] {
		batch := size - fleetWorkers(c)
		for i := 0; i < batch; i++ {
			w, err := c.JoinWorker()
			if err != nil {
				return nil, fmt.Errorf("join to %d: %w", size, err)
			}
			select {
			case <-w.Ready():
			case <-time.After(30 * time.Second):
				return nil, fmt.Errorf("join to %d: worker never became ready", size)
			}
		}
		dur, err := iterate()
		if err != nil {
			return nil, err
		}
		row(size, fmt.Sprintf("join +%d", batch), dur)
	}

	// Drain back FleetGrowTo → 4; each drain retargets the survivors and
	// eagerly flushes the victims' latest data before decommission.
	for i := len(sizes) - 2; i >= 0; i-- {
		size := sizes[i]
		batch := fleetWorkers(c) - size
		ctrl := c.Controller
		ctrl.Do(func() { ctrl.DrainWorkers(batch) })
		if err := awaitFleetSize(c, size); err != nil {
			return nil, fmt.Errorf("drain to %d: %w", size, err)
		}
		dur, err := iterate()
		if err != nil {
			return nil, err
		}
		row(size, fmt.Sprintf("drain -%d", batch), dur)
	}

	cents, err := d.Get(j.Centroids, 0)
	if err != nil {
		return nil, err
	}
	identical := bytes.Equal(cents, refCents)
	if !identical {
		return nil, fmt.Errorf("fleet: centroids after elastic run differ from fixed-fleet run")
	}
	if rec := c.Controller.Stats.Recoveries.Load(); rec != 0 {
		return nil, fmt.Errorf("fleet: %d recoveries during elastic run; want zero failed commands", rec)
	}
	st := c.Controller.FleetStats()
	t.Notes = append(t.Notes,
		fmt.Sprintf("centroids bit-identical to fixed %d-worker run: %v; joins=%d drains=%d recoveries=0",
			4, identical, st.Joins, st.Drains))

	simNote, err := s.fleetSim()
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, simNote)
	return t, nil
}

// fleetSizes returns the doubling sweep from lo to hi inclusive.
func fleetSizes(lo, hi int) []int {
	sizes := []int{lo}
	for n := lo * 2; n < hi; n *= 2 {
		sizes = append(sizes, n)
	}
	if hi > lo {
		sizes = append(sizes, hi)
	}
	return sizes
}

func fleetWorkers(c *cluster.Cluster) int {
	return c.Controller.FleetStats().Workers
}

func awaitFleetSize(c *cluster.Cluster, size int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := c.Controller.FleetStats()
		if st.Workers == size && st.Draining == 0 && st.Warming == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet stuck at %+v, want %d settled", st, size)
		}
		time.Sleep(time.Millisecond)
	}
}

// fleetReference runs the same clustering program on a fixed 4-worker
// fleet and returns its centroid bytes.
func (s Scale) fleetReference(cfg kmeans.Config, iters int) ([]byte, error) {
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Slots: s.Slots, Registry: reg})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	d, err := c.Driver("fleet-ref")
	if err != nil {
		return nil, err
	}
	defer d.Close()
	j, err := kmeans.Setup(d, cfg)
	if err != nil {
		return nil, err
	}
	if err := j.InstallTemplate(); err != nil {
		return nil, err
	}
	for i := 0; i < iters; i++ {
		if err := j.Iterate(); err != nil {
			return nil, err
		}
		if _, err := j.ShiftValue(); err != nil {
			return nil, err
		}
	}
	return d.Get(j.Centroids, 0)
}

// fleetSim joins a bare FleetSimWorkers-node fleet over Mem (no jobs, so
// each join is pure lifecycle protocol) and drains it back, reporting
// throughput. It exercises the controller's fleet tables at a scale an
// in-process cluster with live jobs cannot reach.
func (s Scale) fleetSim() (string, error) {
	c, err := cluster.Start(cluster.Options{Workers: 4, Slots: 1})
	if err != nil {
		return "", err
	}
	defer c.Stop()
	target := s.FleetSimWorkers
	joinStart := time.Now()
	for fleetWorkers(c) < target {
		w, err := c.JoinWorker()
		if err != nil {
			return "", fmt.Errorf("fleet sim join: %w", err)
		}
		select {
		case <-w.Ready():
		case <-time.After(30 * time.Second):
			return "", fmt.Errorf("fleet sim: worker never became ready at size %d", fleetWorkers(c))
		}
	}
	joinDur := time.Since(joinStart)
	drainStart := time.Now()
	ctrl := c.Controller
	ctrl.Do(func() { ctrl.DrainWorkers(target - 4) })
	if err := awaitFleetSize(c, 4); err != nil {
		return "", fmt.Errorf("fleet sim drain: %w", err)
	}
	drainDur := time.Since(drainStart)
	st := c.Controller.FleetStats()
	return fmt.Sprintf(
		"%d-worker fleet sim over Mem: joined in %v (%.0f joins/s, warm p99 %v), drained in %v (%.0f drains/s)",
		target, joinDur.Round(time.Millisecond), float64(st.Joins)/joinDur.Seconds(),
		st.WarmP99.Round(time.Microsecond),
		drainDur.Round(time.Millisecond), float64(st.Drains)/drainDur.Seconds()), nil
}
