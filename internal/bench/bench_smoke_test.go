package bench

import (
	"testing"
	"time"
)

// smokeScale is a minimal configuration so every experiment runs in CI
// time.
func smokeScale() Scale {
	s := Quick()
	s.Workers = []int{2, 4}
	s.Fig1Workers = []int{2, 4}
	s.Tasks = 16
	s.ReduceFan = 4
	s.Iterations = 2
	s.TaskDur = 500 * time.Microsecond
	s.ReduceDur = 100 * time.Microsecond
	s.WaterWorkers = 2
	s.WaterParts = 4
	s.WaterGridDur = 200 * time.Microsecond
	s.WaterSubsteps, s.WaterReinit, s.WaterJacobi, s.WaterFrames = 1, 1, 2, 1
	s.FrontDoorSessions = []int{64}
	s.FrontDoorLoopIters = 10
	s.FleetGrowTo = 8
	s.FleetPoints = 50
	s.FleetSimWorkers = 8
	return s
}

// TestEveryExperimentRuns executes the experiment runners end to end at
// smoke scale, asserting they produce rows.
func TestEveryExperimentRuns(t *testing.T) {
	runners := map[string]func(Scale) (*Table, error){
		"fig1": Fig1, "table1": Table1, "table2": Table2, "table3": Table3,
		"fig7": Fig7, "fig8": Fig8, "fig9": Fig9, "fig10": Fig10, "fig11": Fig11,
		"frontdoor": FrontDoor, "fleet": Fleet,
	}
	s := smokeScale()
	for name, run := range runners {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			tbl, err := run(s)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", name)
			}
			if tbl.Format() == "" {
				t.Fatalf("%s formats empty", name)
			}
		})
	}
}
