package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/cluster/leakcheck"
	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// These tests exercise controller failover end to end: hot-standby
// replication, lease-based takeover, worker last-known-good autonomy, and
// driver reattach reconciliation. They are the chaos smoke CI runs under
// -race (-run 'Failover|Takeover|KillController').

func totalActivations(c *Cluster) uint64 {
	var tot uint64
	for _, w := range c.Workers {
		tot += w.Stats.Activations.Load()
	}
	return tot
}

// kmeansFailoverCfg is shared by the reference and failover runs: the
// math is placement-independent (reductions read partitions in index
// order), so both runs must land on bit-identical centroids.
func kmeansFailoverCfg() kmeans.Config {
	return kmeans.Config{
		Partitions:    6,
		K:             3,
		Dims:          2,
		PointsPerPart: 10000,
		Seed:          11,
	}
}

// runKmeansExplicit runs the explicit-iteration clustering loop (one Get
// round trip per iteration) for exactly iters iterations and returns the
// raw centroid bytes. The driver session is left open so the caller can
// inspect the job before Close.
func runKmeansExplicit(c *Cluster, iters int) ([]byte, *driver.Driver, error) {
	d, err := c.Driver("kmeans-failover")
	if err != nil {
		return nil, nil, err
	}
	j, err := kmeans.Setup(d, kmeansFailoverCfg())
	if err != nil {
		return nil, d, err
	}
	if err := j.InstallTemplate(); err != nil {
		return nil, d, err
	}
	for i := 0; i < iters; i++ {
		if err := j.Iterate(); err != nil {
			return nil, d, err
		}
		if _, err := j.ShiftValue(); err != nil {
			return nil, d, err
		}
	}
	cents, err := d.Get(j.Centroids, 0)
	return cents, d, err
}

// TestKillControllerMidKmeansStandbyFinishes is the acceptance test: the
// primary is killed mid-run, the standby takes over within the lease TTL,
// and the job completes with centroids bit-identical to an uninterrupted
// run — zero logged operations lost or double-applied (applied count ==
// driver journal), with the workers having executed work during the
// outage and dropped nothing.
func TestKillControllerMidKmeansStandbyFinishes(t *testing.T) {
	leakcheck.Check(t)
	const iters = 10

	// Reference: the same program on an undisturbed cluster.
	refReg := testRegistry(t)
	kmeans.Register(refReg)
	ref := startTestCluster(t, Options{Workers: 3, Slots: 2, Registry: refReg})
	refCents, refD, err := runKmeansExplicit(ref, iters)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refD.Close()

	// Failover cluster: short lease, hot standby attached.
	reg := testRegistry(t)
	kmeans.Register(reg)
	c := startTestCluster(t, Options{
		Workers: 3, Slots: 2, Registry: reg,
		LeaseTTL: 150 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}

	type progRes struct {
		cents []byte
		d     *driver.Driver
		err   error
	}
	resCh := make(chan progRes, 1)
	go func() {
		cents, d, err := runKmeansExplicit(c, iters)
		resCh <- progRes{cents, d, err}
	}()

	// Kill the primary mid-run: wait until the cluster is well into the
	// iteration loop, then strike right after a fresh activation so work
	// is in flight on the workers.
	deadline := time.Now().Add(10 * time.Second)
	minAct := uint64(30)
	if floor := uint64(3 * len(c.Workers)); minAct < floor {
		minAct = floor
	}
	for totalActivations(c) < minAct && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	base := totalActivations(c)
	for totalActivations(c) == base && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	c.KillController()

	promoted, err := c.AwaitPromotion(10 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}

	var res progRes
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("driver program hung after failover")
	}
	if res.err != nil {
		t.Fatalf("failover run: %v", res.err)
	}
	if !bytes.Equal(res.cents, refCents) {
		t.Fatalf("centroids diverged after failover:\n got %x\nwant %x", res.cents, refCents)
	}

	// Reconcile invariants: the promoted controller's applied count equals
	// the driver's journal (nothing lost, nothing double-applied), and it
	// got there by replaying the replicated oplog.
	if got, want := promoted.JobApplied(res.d.Job()), res.d.OpsSent(); got != want {
		t.Errorf("applied ops = %d, driver journaled %d", got, want)
	}
	if promoted.Stats.Takeovers.Load() == 0 {
		t.Error("promoted controller recorded no takeovers")
	}
	if promoted.Stats.OpsReplayed.Load() == 0 {
		t.Error("takeover replayed no logged operations")
	}

	var outageDone, dropped uint64
	for _, w := range c.Workers {
		outageDone += w.Stats.OutageDone.Load()
		dropped += w.Stats.DroppedReports.Load()
	}
	if outageDone == 0 {
		t.Error("workers executed no commands during the outage window")
	}
	if dropped != 0 {
		t.Errorf("workers dropped %d buffered reports", dropped)
	}
	res.d.Close()
}

// TestTakeoverLeaseExpiryPromotesStandby checks the promotion machinery
// alone: kill an idle primary, watch the lease run out, and verify the
// promoted controller re-binds the endpoint, reassembles the worker
// roster, and serves a brand-new driver session.
func TestTakeoverLeaseExpiryPromotesStandby(t *testing.T) {
	leakcheck.Check(t)
	c := startTestCluster(t, Options{
		Workers: 2, LeaseTTL: 120 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}
	c.KillController()
	if _, err := c.AwaitPromotion(10 * time.Second); err != nil {
		t.Fatalf("takeover: %v", err)
	}

	// Every worker reattaches under its prior identity.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var reconnects uint64
		for _, w := range c.Workers {
			reconnects += w.Stats.Reconnects.Load()
		}
		if reconnects >= uint64(len(c.Workers)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never reattached (reconnects=%d)", reconnects)
		}
		time.Sleep(time.Millisecond)
	}

	// The promoted controller admits and runs fresh work.
	d, err := c.Driver("post-takeover")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()
	x := d.MustVar("x", 4)
	for p := 0; p < 4; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p + 1)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Submit(fnDouble, 4, nil, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for p := 0; p < 4; p++ {
		got, err := d.GetFloats(x, p)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if len(got) != 1 || got[0] != float64(2*(p+1)) {
			t.Fatalf("x[%d] = %v, want [%d]", p, got, 2*(p+1))
		}
	}
}

// fnSlowDouble is fnDouble with a deliberate delay, so a controller kill
// reliably lands while commands are still executing.
const fnSlowDouble ids.FunctionID = fn.FirstAppFunc + 40

func slowRegistry(t testing.TB) *fn.Registry {
	reg := testRegistry(t)
	reg.MustRegister(fnSlowDouble, "test/slow-double", func(c *fn.Ctx) error {
		time.Sleep(30 * time.Millisecond)
		in := params.NewDecoder(params.Blob(c.Read(0))).Floats()
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = 2 * v
		}
		c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
		return nil
	})
	return reg
}

// TestFailoverWorkerAutonomyBuffersAndReplays checks the worker outage
// state machine: installed work keeps draining after the controller dies,
// completions are buffered in the last-known-good queue, and the buffer
// replays on reconnect without losing or double-applying anything — the
// final values are doubled exactly once.
func TestFailoverWorkerAutonomyBuffersAndReplays(t *testing.T) {
	leakcheck.Check(t)
	const parts = 8
	c := startTestCluster(t, Options{
		Workers: 2, Slots: 2, Registry: slowRegistry(t),
		LeaseTTL: 150 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}

	type progRes struct {
		vals [][]float64
		d    *driver.Driver
		err  error
	}
	resCh := make(chan progRes, 1)
	go func() {
		res := progRes{}
		defer func() { resCh <- res }()
		d, err := c.Driver("autonomy")
		res.d, res.err = d, err
		if err != nil {
			return
		}
		x := d.MustVar("x", parts)
		for p := 0; p < parts; p++ {
			if res.err = d.PutFloats(x, p, []float64{float64(p), 1}); res.err != nil {
				return
			}
		}
		if res.err = d.Submit(fnSlowDouble, parts, nil, x.Read(), x.Write()); res.err != nil {
			return
		}
		for p := 0; p < parts; p++ {
			vals, err := d.GetFloats(x, p)
			if err != nil {
				res.err = err
				return
			}
			res.vals = append(res.vals, vals)
		}
	}()

	// Kill once the uploads have drained and a slow task is mid-execution
	// (admitted but not completed), so the outage reliably interrupts
	// running work.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var act, done uint64
		for _, w := range c.Workers {
			act += w.Stats.Activations.Load()
			done += w.Stats.CommandsDone.Load()
		}
		if done >= parts && act > done {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	c.KillController()
	if _, err := c.AwaitPromotion(10 * time.Second); err != nil {
		t.Fatalf("takeover: %v", err)
	}

	var res progRes
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("driver program hung after failover")
	}
	if res.err != nil {
		t.Fatalf("driver program: %v", res.err)
	}
	for p, vals := range res.vals {
		if len(vals) != 2 || vals[0] != float64(2*p) || vals[1] != 2 {
			t.Fatalf("x[%d] = %v, want [%d 2] (doubled exactly once)", p, vals, 2*p)
		}
	}

	var outageDone, buffered, replayed, dropped uint64
	for _, w := range c.Workers {
		outageDone += w.Stats.OutageDone.Load()
		buffered += w.Stats.BufferedReports.Load()
		replayed += w.Stats.ReplayedReports.Load()
		dropped += w.Stats.DroppedReports.Load()
	}
	if outageDone == 0 {
		t.Error("no commands completed during the outage")
	}
	if buffered == 0 {
		t.Error("no completions were buffered during the outage")
	}
	if replayed == 0 {
		t.Error("no buffered reports were replayed on reconnect")
	}
	if dropped != 0 {
		t.Errorf("%d buffered reports dropped", dropped)
	}
	res.d.Close()
}

// TestFailoverDriverReissuesUnresolvedGets checks driver continuity: a Get
// future pending across the controller switch is re-issued under its
// original seq and resolves with the correct value, while a pending
// controller-evaluated loop fails deterministically (its loop state died
// with the primary) instead of hanging or silently restarting.
func TestFailoverDriverReissuesUnresolvedGets(t *testing.T) {
	leakcheck.Check(t)
	c := startTestCluster(t, Options{
		Workers: 2, Slots: 2, LeaseTTL: 150 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}

	type progRes struct {
		yvals   []float64
		yerr    error
		looperr error
		d       *driver.Driver
		err     error
	}
	resCh := make(chan progRes, 1)
	go func() {
		res := progRes{}
		defer func() { resCh <- res }()
		d, err := c.Driver("reissue")
		res.d, res.err = d, err
		if err != nil {
			return
		}
		s := d.MustVar("s", 1)
		y := d.MustVar("y", 1)
		if res.err = d.PutFloats(s, 0, []float64{1}); res.err != nil {
			return
		}
		if res.err = d.PutFloats(y, 0, []float64{7}); res.err != nil {
			return
		}
		if res.err = d.BeginTemplate("spin"); res.err != nil {
			return
		}
		if res.err = d.Submit(fnDouble, 1, nil, s.Read(), s.Write()); res.err != nil {
			return
		}
		if res.err = d.EndTemplate("spin"); res.err != nil {
			return
		}
		// A practically unbounded loop (s stays >= 0 forever) so the kill
		// lands mid-loop, with a Get queued behind the loop's op fence.
		lw := d.InstantiateWhileAsync("spin", s.AtLeast(0, 0), 1_000_000)
		fy := d.GetFloatsAsync(y, 0)
		res.yvals, res.yerr = fy.Wait()
		_, res.looperr = lw.Wait()
	}()

	// Let the loop spin a little, then kill the primary.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var done uint64
		for _, w := range c.Workers {
			done += w.Stats.CommandsDone.Load()
		}
		if done >= 10 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	c.KillController()
	promoted, err := c.AwaitPromotion(10 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}

	var res progRes
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("driver futures hung after failover")
	}
	if res.err != nil {
		t.Fatalf("driver program: %v", res.err)
	}
	if res.yerr != nil {
		t.Fatalf("re-issued Get failed: %v", res.yerr)
	}
	if len(res.yvals) != 1 || res.yvals[0] != 7 {
		t.Fatalf("re-issued Get = %v, want [7]", res.yvals)
	}
	if res.looperr == nil || !strings.Contains(res.looperr.Error(), "interrupted") {
		t.Fatalf("loop future err = %v, want deterministic interruption", res.looperr)
	}
	if got, want := promoted.JobApplied(res.d.Job()), res.d.OpsSent(); got != want {
		t.Errorf("applied ops = %d, driver journaled %d", got, want)
	}
	res.d.Close()
}

// TestFailoverAfterRejectedOpKeepsJournalInLockstep pins the rejected-op
// accounting invariant: a journaled operation the controller refuses (here
// a Put to an undefined variable) must still advance the per-job applied
// count, because the driver journaled it before sending. Otherwise every
// reattach after the rejection resends the journal suffix one op early,
// replaying an operation the controller already applied.
func TestFailoverAfterRejectedOpKeepsJournalInLockstep(t *testing.T) {
	leakcheck.Check(t)
	c := startTestCluster(t, Options{
		Workers: 2, LeaseTTL: 150 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}
	d, err := c.Driver("rejected-op")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	v := d.MustVar("x", 1)
	if err := d.PutFloats(v, 0, []float64{1, 2}); err != nil {
		t.Fatalf("put: %v", err)
	}
	// The rejected journaled op. The driver counts it in OpsSent; the
	// rejection surfaces on the next blocking call.
	if err := d.Put(driver.Var{ID: ids.VariableID(99)}, 0, []byte{0}); err != nil {
		t.Fatalf("rejected put send: %v", err)
	}
	if err := d.Barrier(); err == nil || !strings.Contains(err.Error(), "unknown variable") {
		t.Fatalf("barrier after rejected op: err = %v, want unknown-variable rejection", err)
	}
	// Two valid rounds after the rejection. The replication window fence
	// admits op N only once op N-1 is acked, so by the time the second
	// round's put has dispatched (its barrier resolved), the standby has
	// applied everything up to and including the first round — and with it
	// the rejected op's applied-count sync that precedes it in the stream.
	if err := d.PutFloats(v, 0, []float64{3, 4}); err != nil {
		t.Fatalf("put after rejection: %v", err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatalf("barrier after rejection: %v", err)
	}
	if err := d.PutFloats(v, 0, []float64{5, 6}); err != nil {
		t.Fatalf("final put: %v", err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatalf("final barrier: %v", err)
	}

	c.KillController()
	promoted, err := c.AwaitPromotion(10 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}

	// The read reattaches the session and resends the journal suffix past
	// the promoted controller's applied count. A desynced count would
	// resend the rejected op here, surfacing a second rejection on this
	// future.
	got, err := d.GetFloats(v, 0)
	if err != nil {
		t.Fatalf("get after failover: %v", err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("get after failover = %v, want [5 6]", got)
	}
	if got, want := promoted.JobApplied(d.Job()), d.OpsSent(); got != want {
		t.Errorf("applied ops = %d, driver journaled %d", got, want)
	}
	d.Close()
}
