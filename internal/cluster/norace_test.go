//go:build !race

package cluster

// raceEnabled: see race_test.go.
const raceEnabled = false
