package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/params"
	"nimbus/internal/transport"
)

// TestLoopOneMessagePerPredicate asserts the headline property of
// controller-evaluated loops (driver API v2): N template iterations cost
// exactly one driver→controller frame — the InstantiateWhile itself —
// against the v1 pattern's one Instantiate plus one Get round trip per
// iteration. The driver's connection is wrapped in a counting transport
// so the assertion is at the frame level, not inferred from stats.
func TestLoopOneMessagePerPredicate(t *testing.T) {
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := Start(Options{Workers: 3, Slots: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ct := transport.NewCounting(c.Transport)
	d, err := driver.Connect(ct, ControlAddr, "loop-frames")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeans.Config{Partitions: 6, K: 2, Dims: 2, PointsPerPart: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	const iters = 6
	stats := &c.Controller.Stats
	evals0 := stats.PredicateEvals.Load()
	insts0 := stats.Instantiations.Load()
	sends0 := ct.Sends()
	// The centroid shift is a norm, so "shift >= 0" always holds and the
	// loop runs to MaxIters — a fixed-trip loop expressed as a predicate.
	res, err := d.InstantiateWhile(kmeans.IterateBlock, j.Shift.AtLeast(0, 0), iters)
	if err != nil {
		t.Fatalf("loop: %v", err)
	}
	sends := ct.Sends() - sends0
	if res.Iters != iters {
		t.Fatalf("loop ran %d iterations, want %d", res.Iters, iters)
	}
	if res.LastValue < 0 {
		t.Fatalf("loop's last shift = %v, want >= 0", res.LastValue)
	}
	if sends != 1 {
		t.Fatalf("driver sent %d frames for a %d-iteration loop; a predicate loop must cost exactly 1", sends, iters)
	}
	var evals, insts uint64
	c.Controller.Do(func() {
		evals = stats.PredicateEvals.Load() - evals0
		insts = stats.Instantiations.Load() - insts0
	})
	if evals != iters {
		t.Errorf("controller evaluated the predicate %d times for %d iterations", evals, iters)
	}
	if insts != iters {
		t.Errorf("controller ran %d instantiations for %d loop iterations", insts, iters)
	}
}

// TestFailedLoopResolvesPipelinedFutures: a rejected or aborted loop
// answers on its own seq (LoopDone.Err), so a driver that pipelined more
// operations behind it gets every future resolved — the failing loop's
// with the error, the others with their real results — instead of
// hanging on a reply that would never come.
func TestFailedLoopResolvesPipelinedFutures(t *testing.T) {
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := Start(Options{Workers: 2, Slots: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	d, err := c.Driver("loop-fail")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar("x", 2)
	if err := d.PutFloats(x, 0, []float64{7}); err != nil {
		t.Fatal(err)
	}

	loopFut := d.InstantiateWhileAsync("no-such-template", x.AtLeast(0, 0), 4)
	getFut := d.GetFloatsAsync(x, 0)
	// Wait the get FIRST: under the v1 error model the controller error
	// would surface here and the loop future would hang forever.
	got, err := getFut.Wait()
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("pipelined get = %v (err %v), want [7]", got, err)
	}
	if _, err := loopFut.Wait(); err == nil || !strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("failed loop error = %v, want unknown template", err)
	}
}

// TestLoopFencesLaterDriverOps: operations pipelined behind an
// InstantiateWhile must not interleave with its iterations — the get
// below must observe the loop's final state.
func TestLoopFencesLaterDriverOps(t *testing.T) {
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := Start(Options{Workers: 3, Slots: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	d, err := c.Driver("loop-fence")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeans.Config{Partitions: 6, K: 2, Dims: 2, PointsPerPart: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		t.Fatal(err)
	}

	const iters = 5
	// Pipeline: loop, then a fenced execution-mutating op (Put), then a
	// read of the centroids — without waiting for the loop first. The Put
	// must queue behind the loop (not interleave with, or deadlock, its
	// iterations) and the read must see the post-loop centroids.
	marker := d.MustVar("fence-marker", 1)
	loopFut := d.InstantiateWhileAsync(kmeans.IterateBlock, j.Shift.AtLeast(0, 0), iters)
	if err := d.PutFloats(marker, 0, []float64{42}); err != nil {
		t.Fatal(err)
	}
	centsFut := d.GetFloatsAsync(j.Centroids, 0)
	res, err := loopFut.Wait()
	if err != nil || res.Iters != iters {
		t.Fatalf("loop = %+v (err %v), want %d iters", res, err, iters)
	}
	pipelined, err := centsFut.Wait()
	if err != nil {
		t.Fatalf("pipelined get: %v", err)
	}
	after, err := j.CentroidValues()
	if err != nil {
		t.Fatalf("get after loop: %v", err)
	}
	if len(pipelined) == 0 || len(pipelined) != len(after) {
		t.Fatalf("pipelined read returned %d floats, follow-up %d", len(pipelined), len(after))
	}
	for i := range pipelined {
		if pipelined[i] != after[i] {
			t.Fatalf("pipelined read diverges from post-loop state at %d: %v vs %v", i, pipelined[i], after[i])
		}
	}
	mv, err := d.GetFloats(marker, 0)
	if err != nil || len(mv) != 1 || mv[0] != 42 {
		t.Fatalf("fenced put behind the loop = %v (err %v), want [42]", mv, err)
	}
}

// TestOpsDuringCheckpointSurviveRecovery: the async surface lets driver
// operations arrive between a checkpoint's begin and commit. Such an op
// executed live but is absent from the saved manifest, so its oplog
// entry must survive the commit — otherwise recovery reverts to the
// checkpoint and silently loses the op's writes. The commit clears only
// the log prefix the manifest covers.
func TestOpsDuringCheckpointSurviveRecovery(t *testing.T) {
	reg := fn.NewRegistry()
	// Heartbeat detection is how the kill below is noticed (a stopped
	// worker leaves its control conn open). The timeout is deliberately
	// generous: under -race on a loaded box a tight budget can starve
	// heartbeats long enough to spuriously fail the surviving workers,
	// wedging the job and hanging the test.
	c, err := Start(Options{
		Workers: 3, Slots: 4, Registry: reg,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	reg.MustRegister(fn.FirstAppFunc+50, "loop/double", func(fc *fn.Ctx) error {
		in, err := parseOne(fc.Read(0))
		if err != nil {
			return err
		}
		return writeOne(fc, 2*in)
	})
	d, err := c.Driver("ckpt-window")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint asynchronously and pipeline a double behind it. Whether
	// the submit lands before begin, mid-save, or after commit, its
	// effect must survive the recovery below.
	ckptFut := d.CheckpointAsync()
	if err := d.Submit(fn.FirstAppFunc+50, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if _, err := ckptFut.Wait(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	c.KillWorker(1)
	waitUntil(t, c, 10*time.Second, "worker failure detected and recovery started",
		func() bool { return c.Controller.Stats.Recoveries.Load() >= 1 })
	got, err := d.GetFloats(x, 0)
	if err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("x[0] after recovery = %v, want [2] (pipelined double lost by checkpoint commit)", got)
	}
}

func parseOne(raw []byte) (float64, error) {
	vals, err := params.DecodeFloats(raw)
	if err != nil || len(vals) != 1 {
		return 0, fmt.Errorf("expected one float, got %v (err %v)", vals, err)
	}
	return vals[0], nil
}

func writeOne(fc *fn.Ctx, v float64) error {
	fc.SetWrite(0, params.NewEncoder(16).Floats([]float64{v}).Blob())
	return nil
}

// TestUnevaluablePredicateFailsLoop: a predicate over a partition that
// was never written cannot be mistaken for convergence — the loop future
// fails instead of silently reporting success after one iteration.
func TestUnevaluablePredicateFailsLoop(t *testing.T) {
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := Start(Options{Workers: 2, Slots: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	d, err := c.Driver("loop-noval")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeans.Config{Partitions: 4, K: 2, Dims: 2, PointsPerPart: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	unwritten := d.MustVar("never-written", 2)
	res, err := d.InstantiateWhile(kmeans.IterateBlock, unwritten.AtLeast(1, 0), 4)
	if err == nil || !strings.Contains(err.Error(), "no live value") {
		t.Fatalf("unevaluable predicate: err = %v (res %+v), want no-live-value error", err, res)
	}
	if res.Iters != 1 {
		t.Fatalf("unevaluable predicate ran %d iterations before failing, want 1", res.Iters)
	}
}
