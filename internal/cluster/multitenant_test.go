package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/app/lr"
	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
)

// multiRegistry registers both application workloads on one shared
// worker pool.
func multiRegistry(t testing.TB) *fn.Registry {
	t.Helper()
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	lr.Register(reg)
	return reg
}

// TestTwoJobsKillOneRecoverIsolated is the tentpole isolation proof: two
// driver jobs (k-means and logistic regression) run concurrently over one
// shared cluster; the k-means job is abruptly killed mid-run (driver
// crash, no graceful JobEnd) and later re-admitted as a fresh job, while
// the LR job's completion stream keeps flowing throughout — no cross-job
// halt or flush ever touches it.
func TestTwoJobsKillOneRecoverIsolated(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 4, Slots: 4, Registry: multiRegistry(t)})

	// Job B: logistic regression, iterating continuously in the
	// background. Every iteration ends in a barrier, so progress counts
	// completed instantiation rounds.
	db, err := c.Driver("lr")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	jb, err := lr.Setup(db, lr.Config{
		Partitions: 8, ReduceFan: 2, Simulated: true,
		TaskDuration: 200 * time.Microsecond, ReduceDuration: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jb.InstallTemplates(); err != nil {
		t.Fatal(err)
	}
	var lrIters atomic.Int64
	lrStop := make(chan struct{})
	lrDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-lrStop:
				lrDone <- nil
				return
			default:
			}
			if err := jb.Optimize(); err != nil {
				lrDone <- err
				return
			}
			if err := db.Barrier(); err != nil {
				lrDone <- err
				return
			}
			lrIters.Add(1)
		}
	}()

	// Job A: k-means on the same cluster, same workers.
	kmCfg := kmeans.Config{
		Partitions: 8, K: 2, Simulated: true,
		TaskDuration: 200 * time.Microsecond, ReduceDuration: 100 * time.Microsecond,
	}
	da, err := c.Driver("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	ja, err := kmeans.Setup(da, kmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ja.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	if da.Job() == db.Job() || da.Job() == ids.NoJob {
		t.Fatalf("bad job handles: kmeans=%s lr=%s", da.Job(), db.Job())
	}
	for i := 0; i < 3; i++ {
		if err := ja.Iterate(); err != nil {
			t.Fatal(err)
		}
	}
	// Kill job A mid-run: instantiations are in flight, no barrier, no
	// graceful JobEnd. The controller must tear down exactly job A.
	if err := da.Abort(); err != nil {
		t.Fatal(err)
	}

	// Job B keeps completing rounds after the kill. Waiting for the
	// counter to advance past its at-kill value proves B's in-flight and
	// future instantiations were not flushed by A's teardown.
	atKill := lrIters.Load()
	deadline := time.After(10 * time.Second)
	for lrIters.Load() < atKill+3 {
		select {
		case err := <-lrDone:
			t.Fatalf("lr job stopped after kill: %v", err)
		case <-deadline:
			t.Fatalf("lr job made no progress after job kill (stuck at %d rounds)", lrIters.Load())
		case <-time.After(time.Millisecond):
		}
	}

	// The controller eventually tears job A down (disconnect detection is
	// asynchronous) and keeps serving job B.
	waitUntil(t, c, 5*time.Second, "job A teardown", func() bool {
		jobs := c.Controller.Jobs()
		return len(jobs) == 1 && jobs[0] == db.Job()
	})

	// Recover job A: a fresh driver session re-runs k-means to completion
	// on the same shared cluster.
	da2, err := c.Driver("kmeans-recovered")
	if err != nil {
		t.Fatal(err)
	}
	defer da2.Close()
	ja2, err := kmeans.Setup(da2, kmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ja2.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ja2.Iterate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := da2.Barrier(); err != nil {
		t.Fatalf("recovered kmeans job did not complete: %v", err)
	}

	// And job B still never missed a beat.
	close(lrStop)
	if err := <-lrDone; err != nil {
		t.Fatalf("lr job: %v", err)
	}
	if final := lrIters.Load(); final < atKill+3 {
		t.Fatalf("lr rounds = %d, want > %d", final, atKill+3)
	}
}

// tenant is one raw-driver job used by the same-name isolation test.
type tenant struct {
	d   *driver.Driver
	x   driver.Var
	sum driver.Var
}

// setupTenant declares x/sum (identical driver-local VariableIDs in every
// job), seeds x, and records a template named "blk" that doubles x and
// reduces it into sum.
func setupTenant(t *testing.T, c *Cluster, name string, parts int, seed float64) *tenant {
	t.Helper()
	d, err := c.Driver(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	tn := &tenant{d: d, x: d.MustVar("x", parts), sum: d.MustVar("sum", 1)}
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(tn.x, p, []float64{seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil { // same name in every job
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, tn.x.Read(), tn.x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, tn.x.ReadGrouped(), tn.sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	return tn
}

func (tn *tenant) sumValue(t *testing.T) float64 {
	t.Helper()
	got, err := tn.d.GetFloats(tn.sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sum = %v", got)
	}
	return got[0]
}

// TestSameNameTemplatesIsolated: two jobs install templates under the
// same name ("blk") over identically-numbered variables (driver-local
// VariableIDs collide across jobs by construction) and instantiate them
// interleaved. Each job must see only its own data and its own template —
// the numeric results prove the directory, datastore, template and
// command-ID namespaces never cross.
func TestSameNameTemplatesIsolated(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 3})
	const parts = 6
	a := setupTenant(t, c, "job-a", parts, 1)
	b := setupTenant(t, c, "job-b", parts, 10)

	wantA, wantB := 2.0*parts, 20.0*parts
	if got := a.sumValue(t); got != wantA {
		t.Fatalf("job A after recording: %v, want %v", got, wantA)
	}
	if got := b.sumValue(t); got != wantB {
		t.Fatalf("job B after recording: %v, want %v", got, wantB)
	}
	// Interleaved instantiations of the same-named template, asymmetric
	// counts so cross-wiring cannot cancel out: A runs 2 more doublings,
	// B runs 3.
	for i := 0; i < 2; i++ {
		if err := a.d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
		if err := b.d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
		wantA *= 2
		wantB *= 2
	}
	if err := b.d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	wantB *= 2
	if got := a.sumValue(t); got != wantA {
		t.Fatalf("job A = %v, want %v (cross-job template or data leak)", got, wantA)
	}
	if got := b.sumValue(t); got != wantB {
		t.Fatalf("job B = %v, want %v (cross-job template or data leak)", got, wantB)
	}
}

// TestWorkerFailureRecoversEveryJob: with two checkpointed jobs running,
// a worker failure triggers an independent recovery per job — both revert
// to their own (job-keyed) checkpoints, replay their own logs, and finish
// with correct values.
func TestWorkerFailureRecoversEveryJob(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 3})
	const parts = 6
	a := setupTenant(t, c, "job-a", parts, 1)
	b := setupTenant(t, c, "job-b", parts, 10)
	wantA, wantB := 2.0*parts, 20.0*parts

	// Checkpoint both jobs, then make more progress that the checkpoints
	// do not cover (it is replayed from each job's own log).
	if err := a.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := b.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := a.d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := b.d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	wantA *= 2
	wantB *= 2

	c.KillWorker(1)

	if got := a.sumValue(t); got != wantA {
		t.Fatalf("job A after recovery = %v, want %v", got, wantA)
	}
	if got := b.sumValue(t); got != wantB {
		t.Fatalf("job B after recovery = %v, want %v", got, wantB)
	}
	// Both jobs keep working on the shrunken pool.
	if err := a.d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := b.d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	if got := a.sumValue(t); got != 2*wantA {
		t.Fatalf("job A post-recovery iterate = %v, want %v", got, 2*wantA)
	}
	if got := b.sumValue(t); got != 2*wantB {
		t.Fatalf("job B post-recovery iterate = %v, want %v", got, 2*wantB)
	}
}
