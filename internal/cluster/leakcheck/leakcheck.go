// Package leakcheck asserts that a test leaves no goroutines behind.
// Failover and chaos-soak tests register it before building a cluster;
// since t.Cleanup runs LIFO, the check fires after the cluster's own
// teardown and catches pumps, tick loops, reconnect retriers or data-
// plane writers that survived it.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// settle is how long the check waits for goroutine counts to return to
// the baseline before failing: teardown is asynchronous (pump goroutines
// exit when their conn close propagates), so the count converges rather
// than dropping instantly.
const settle = 10 * time.Second

// Check snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the baseline once the test
// (and every cleanup registered after this call) finishes.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(settle)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		m := runtime.Stack(buf, true)
		t.Errorf("leakcheck: %d goroutines leaked (baseline %d, now %d):\n%s",
			n-base, base, n, buf[:m])
	})
}
