package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/chaos"
	"nimbus/internal/controller"
	"nimbus/internal/driver"
	"nimbus/internal/proto"
)

// pollStats spins on FrontDoorStats until cond holds. It deliberately does
// NOT use waitUntil: that helper evaluates its condition inside
// Controller.Do, and FrontDoorStats itself calls Do, so nesting would
// deadlock the event loop.
func pollStats(t *testing.T, c *Cluster, timeout time.Duration, what string, cond func(controller.FrontDoorStats) bool) controller.FrontDoorStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		s := c.Controller.FrontDoorStats()
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, s)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runOneTask drives a trivial put/double/get round trip and verifies the
// result, exercising the full control path of an admitted session.
func runOneTask(d *driver.Driver, seed float64) error {
	x := d.MustVar("x", 1)
	y := d.MustVar("y", 1)
	if err := d.PutFloats(x, 0, []float64{seed}); err != nil {
		return fmt.Errorf("put: %w", err)
	}
	if err := d.Submit(fnDouble, 1, nil, x.Read(), y.Write()); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	got, err := d.GetFloats(y, 0)
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	if len(got) != 1 || got[0] != 2*seed {
		return fmt.Errorf("double(%v) = %v, want [%v]", seed, got, 2*seed)
	}
	return nil
}

// TestAdmissionMaxJobsTypedReject: with the live-job cap reached and no
// queue configured, a new registration fails fast with the typed
// rejection — the caller never blocks.
func TestAdmissionMaxJobsTypedReject(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 1, MaxJobs: 1})

	d1, err := c.Driver("first")
	if err != nil {
		t.Fatalf("first driver: %v", err)
	}
	defer d1.Close()

	_, err = c.Driver("second")
	if err == nil {
		t.Fatal("second driver admitted past MaxJobs=1")
	}
	if !errors.Is(err, driver.ErrAdmissionRejected) {
		t.Fatalf("reject error = %v, want ErrAdmissionRejected", err)
	}
	var rej *driver.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("reject error %v carries no *driver.RejectError", err)
	}
	if rej.Code != proto.RejectMaxJobs {
		t.Errorf("reject code = %d, want RejectMaxJobs", rej.Code)
	}
	if rej.RetryAfter <= 0 {
		t.Errorf("reject retry-after = %v, want positive hint", rej.RetryAfter)
	}

	// The cap frees up when the live job ends; the next caller gets in.
	if err := d1.Close(); err != nil {
		t.Fatalf("closing first driver: %v", err)
	}
	pollStats(t, c, 5*time.Second, "job slot to free", func(s controller.FrontDoorStats) bool {
		return s.Jobs == 0
	})
	d3, err := c.Driver("third")
	if err != nil {
		t.Fatalf("driver after slot freed: %v", err)
	}
	defer d3.Close()
	if err := runOneTask(d3, 3); err != nil {
		t.Fatalf("admitted driver: %v", err)
	}
}

// TestAdmissionQueueAdmitsOnRelease: a registration past the cap parks in
// the admission queue and is admitted — not rejected — once a live job
// ends.
func TestAdmissionQueueAdmitsOnRelease(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 1, MaxJobs: 1, AdmitQueue: 4})

	d1, err := c.Driver("holder")
	if err != nil {
		t.Fatalf("holder driver: %v", err)
	}

	type connected struct {
		d   *driver.Driver
		err error
	}
	queued := make(chan connected, 1)
	go func() {
		d, err := c.Driver("queued")
		queued <- connected{d, err}
	}()

	pollStats(t, c, 5*time.Second, "registration to queue", func(s controller.FrontDoorStats) bool {
		return s.QueueLen == 1
	})
	select {
	case got := <-queued:
		t.Fatalf("queued driver returned early: d=%v err=%v", got.d, got.err)
	default:
	}

	if err := d1.Close(); err != nil {
		t.Fatalf("closing holder: %v", err)
	}
	select {
	case got := <-queued:
		if got.err != nil {
			t.Fatalf("queued driver not admitted after release: %v", got.err)
		}
		defer got.d.Close()
		if err := runOneTask(got.d, 5); err != nil {
			t.Fatalf("admitted-from-queue driver: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued driver still blocked 5s after the job slot freed")
	}
	s := c.Controller.FrontDoorStats()
	if s.QueueLen != 0 {
		t.Errorf("queue length = %d after drain, want 0", s.QueueLen)
	}
	if s.AdmissionP99 <= 0 {
		t.Errorf("admission p99 = %v after queued admission, want positive", s.AdmissionP99)
	}
}

// TestAdmissionQueueFullTypedReject: with the cap reached and the queue
// full, overflow gets the typed queue-full rejection immediately.
func TestAdmissionQueueFullTypedReject(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 1, MaxJobs: 1, AdmitQueue: 1})

	d1, err := c.Driver("holder")
	if err != nil {
		t.Fatalf("holder driver: %v", err)
	}

	queued := make(chan error, 1)
	go func() {
		d, err := c.Driver("queued")
		if err == nil {
			defer d.Close()
		}
		queued <- err
	}()
	pollStats(t, c, 5*time.Second, "registration to queue", func(s controller.FrontDoorStats) bool {
		return s.QueueLen == 1
	})

	_, err = c.Driver("overflow")
	var rej *driver.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("overflow error = %v, want *driver.RejectError", err)
	}
	if rej.Code != proto.RejectQueueFull {
		t.Errorf("overflow code = %d, want RejectQueueFull", rej.Code)
	}
	if rej.RetryAfter <= 0 {
		t.Errorf("overflow retry-after = %v, want positive hint", rej.RetryAfter)
	}

	// The queued session is unaffected by the overflow rejection.
	if err := d1.Close(); err != nil {
		t.Fatalf("closing holder: %v", err)
	}
	select {
	case err := <-queued:
		if err != nil {
			t.Fatalf("queued driver failed after overflow reject: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued driver never admitted")
	}
}

// TestAdmissionContextCancelWhileQueued: canceling the connect context
// while the registration waits in the admission queue removes the queue
// entry and releases the connection — no orphaned job state, no leaked
// conn.
func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 1, MaxJobs: 1, AdmitQueue: 4})

	d1, err := c.Driver("holder")
	if err != nil {
		t.Fatalf("holder driver: %v", err)
	}
	defer d1.Close()
	base := pollStats(t, c, 5*time.Second, "holder tracked", func(s controller.FrontDoorStats) bool {
		return s.Jobs == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() {
		d, err := driver.ConnectOpts(ctx, c.net, ControlAddr, driver.Opts{Name: "canceled"})
		if err == nil {
			d.Close()
		}
		queued <- err
	}()
	pollStats(t, c, 5*time.Second, "registration to queue", func(s controller.FrontDoorStats) bool {
		return s.QueueLen == 1
	})

	cancel()
	select {
	case err := <-queued:
		if err == nil {
			t.Fatal("canceled connect reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled connect still blocked after 5s")
	}
	// The queue entry drains and the abandoned conn is untracked; the
	// surviving job is exactly the holder's.
	pollStats(t, c, 5*time.Second, "canceled entry to drain", func(s controller.FrontDoorStats) bool {
		return s.QueueLen == 0 && s.Conns == base.Conns && s.Jobs == 1
	})

	// The slot is genuinely free: ending the holder leaves zero jobs (a
	// phantom admission of the canceled entry would strand one).
	if err := d1.Close(); err != nil {
		t.Fatalf("closing holder: %v", err)
	}
	pollStats(t, c, 5*time.Second, "all jobs to end", func(s controller.FrontDoorStats) bool {
		return s.Jobs == 0
	})
}

// TestSessionMux10kJobs is the tentpole acceptance test: 10k concurrent
// driver sessions multiplexed over at most 16 shared connections, every
// session running a real put/compute/get round trip with zero failures.
func TestSessionMux10kJobs(t *testing.T) {
	n := 10000
	if raceEnabled {
		// The race detector's shadow memory makes a 10k herd's GC pauses
		// long enough to starve later tests' heartbeat windows.
		n = 2500
	}
	if testing.Short() {
		n = 1000
	}
	c := startTestCluster(t, Options{
		Workers: 4,
		Slots:   8,
		// 10k sessions ending all log "job ended"; keep the hot path quiet.
		Logf: func(string, ...any) {},
	})
	gw := c.Gateway(driver.DefaultMaxConns)
	defer gw.Close()

	drivers := make([]*driver.Driver, n)
	var wg sync.WaitGroup
	var connectErrs atomic.Uint64
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			d, err := driver.ConnectOpts(context.Background(), gw, ControlAddr, driver.Opts{
				Name: fmt.Sprintf("sess-%d", i),
			})
			if err != nil {
				connectErrs.Add(1)
				return
			}
			drivers[i] = d
		}(i)
	}
	wg.Wait()
	if ce := connectErrs.Load(); ce != 0 {
		t.Fatalf("%d of %d sessions failed to connect", ce, n)
	}

	// Barrier: all n sessions are admitted and live before any runs work —
	// this is n concurrent jobs through one controller, not n sequential.
	s := c.Controller.FrontDoorStats()
	if s.Jobs != n {
		t.Fatalf("live jobs = %d at barrier, want %d", s.Jobs, n)
	}
	if s.GatewaySessions != n {
		t.Errorf("gateway sessions = %d, want %d", s.GatewaySessions, n)
	}
	if got := gw.Conns(); got > driver.DefaultMaxConns {
		t.Errorf("mux used %d conns, cap %d", got, driver.DefaultMaxConns)
	}
	if s.GatewayConns > driver.DefaultMaxConns {
		t.Errorf("controller tracks %d gateway conns, cap %d", s.GatewayConns, driver.DefaultMaxConns)
	}

	var failures atomic.Uint64
	var firstErr atomic.Value
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			d := drivers[i]
			if err := runOneTask(d, float64(i)); err != nil {
				failures.Add(1)
				firstErr.CompareAndSwap(nil, fmt.Errorf("session %d: %w", i, err))
			}
			if err := d.Close(); err != nil {
				failures.Add(1)
				firstErr.CompareAndSwap(nil, fmt.Errorf("session %d close: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d sessions failed; first: %v", f, n, firstErr.Load())
	}

	pollStats(t, c, 30*time.Second, "all sessions to unwind", func(s controller.FrontDoorStats) bool {
		return s.Jobs == 0 && s.GatewaySessions == 0
	})
	s = c.Controller.FrontDoorStats()
	if s.AdmissionP99 <= 0 {
		t.Errorf("admission p99 = %v after %d admissions, want positive", s.AdmissionP99, n)
	}
	// Let the herd's goroutines unwind and return its heap before the
	// next test starts: under the race detector, thousands of draining
	// session goroutines plus the collection of this heap starve the
	// scheduler enough to blow later tests' tight heartbeat windows.
	drivers = nil
	runtime.GC()
	settle := time.Now()
	for time.Since(settle) < 10*time.Second && runtime.NumGoroutine() > 200 {
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	t.Logf("goroutines after settle: %d", runtime.NumGoroutine())
}

// TestSessionTenantFairShare: executor quota on a live worker divides
// between tenants by configured weight and within a tenant by job weight,
// and re-divides when a tenant goes idle.
func TestSessionTenantFairShare(t *testing.T) {
	c := startTestCluster(t, Options{
		Workers:       1,
		Slots:         240,
		TenantWeights: map[string]int{"gold": 3, "bronze": 1},
	})
	gw := c.Gateway(4)
	defer gw.Close()

	connect := func(name, tenant string, weight int) *driver.Driver {
		t.Helper()
		d, err := driver.ConnectOpts(context.Background(), gw, ControlAddr, driver.Opts{
			Name: name, Tenant: tenant, Weight: weight,
		})
		if err != nil {
			t.Fatalf("driver %s: %v", name, err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	goldA := connect("gold-a", "gold", 1)
	goldB := connect("gold-b", "gold", 2)
	bronzeA := connect("bronze-a", "bronze", 1)
	bronzeB := connect("bronze-b", "bronze", 1)

	w := c.Workers[0]
	quotas := func() [4]int {
		return [4]int{
			w.QuotaOf(goldA.Job()), w.QuotaOf(goldB.Job()),
			w.QuotaOf(bronzeA.Job()), w.QuotaOf(bronzeB.Job()),
		}
	}
	// 240 slots, tenant weights 3:1, four live jobs. Gold's 180 split 1:2
	// between its jobs; bronze's 60 split evenly. The acceptance bound is
	// ±10% of configured ratios; integer shares land exact here.
	want := [4]int{60, 120, 30, 30}
	deadline := time.Now().Add(5 * time.Second)
	for quotas() != want {
		if time.Now().After(deadline) {
			t.Fatalf("worker quotas = %v, want %v", quotas(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Bronze going idle re-divides the pool among gold's jobs alone.
	bronzeA.Close()
	bronzeB.Close()
	deadline = time.Now().Add(5 * time.Second)
	for w.QuotaOf(goldA.Job()) != 80 || w.QuotaOf(goldB.Job()) != 160 {
		if time.Now().After(deadline) {
			t.Fatalf("gold quotas after bronze idle = %d,%d, want 80,160",
				w.QuotaOf(goldA.Job()), w.QuotaOf(goldB.Job()))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The shares are still real quotas: both gold sessions run work.
	if err := runOneTask(goldA, 7); err != nil {
		t.Fatalf("gold-a after rebalance: %v", err)
	}
	if err := runOneTask(goldB, 9); err != nil {
		t.Fatalf("gold-b after rebalance: %v", err)
	}
}

// TestSessionChaosIsolation: wire faults on one shared gateway connection
// fail only that connection's sessions. Sessions on other connections —
// the neighbors — finish every operation correctly. Runs under -race in
// CI to pin the isolation invariant.
func TestSessionChaosIsolation(t *testing.T) {
	const perSide = 4

	// victimResult is written by victim goroutines that may outlive the
	// subtest (a dropped final frame can park them in Recv until cluster
	// shutdown); they report through atomics and never touch testing.T.
	type victimTally struct {
		wrong atomic.Uint64 // corrupted values observed — never acceptable
		done  atomic.Uint64 // sessions that finished (ok or clean error)
	}

	// startVictims launches perSide sessions over vmux, each doing a
	// round trip; errors are fine (their conn is under fault injection),
	// wrong values are not.
	startVictims := func(c *Cluster, vmux *driver.Mux, tally *victimTally) {
		for i := 0; i < perSide; i++ {
			go func(i int) {
				defer tally.done.Add(1)
				d, err := driver.ConnectOpts(context.Background(), vmux, ControlAddr, driver.Opts{
					Name: fmt.Sprintf("victim-%d", i),
				})
				if err != nil {
					return
				}
				defer d.Close()
				seed := float64(100 + i)
				x := d.MustVar("x", 1)
				y := d.MustVar("y", 1)
				if d.PutFloats(x, 0, []float64{seed}) != nil {
					return
				}
				if d.Submit(fnDouble, 1, nil, x.Read(), y.Write()) != nil {
					return
				}
				got, err := d.GetFloats(y, 0)
				if err != nil {
					return
				}
				if len(got) != 1 || got[0] != 2*seed {
					tally.wrong.Add(1)
				}
			}(i)
		}
	}

	runNeighbors := func(t *testing.T, nmux *driver.Mux) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, perSide)
		wg.Add(perSide)
		for i := 0; i < perSide; i++ {
			go func(i int) {
				defer wg.Done()
				d, err := driver.ConnectOpts(context.Background(), nmux, ControlAddr, driver.Opts{
					Name: fmt.Sprintf("neighbor-%d", i),
				})
				if err != nil {
					errs <- fmt.Errorf("neighbor %d connect: %w", i, err)
					return
				}
				defer d.Close()
				// Several rounds so neighbor traffic overlaps the faults.
				for r := 0; r < 5; r++ {
					if err := runOneTask(d, float64(10*i+r)); err != nil {
						errs <- fmt.Errorf("neighbor %d round %d: %w", i, r, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}

	t.Run("sever", func(t *testing.T) {
		c := startTestCluster(t, Options{Workers: 2, Logf: func(string, ...any) {}})
		// Victims dial through a private chaos layer so Sever kills only
		// their shared conns; neighbors share nothing with them but the
		// controller itself.
		ch := chaos.New(c.Transport, 1)
		vmux := driver.NewMux(ch, 2)
		defer vmux.Close()
		nmux := c.Gateway(2)
		defer nmux.Close()

		var tally victimTally
		startVictims(c, vmux, &tally)
		// Cut every victim conn mid-flight, then drive the neighbors to
		// completion across the event.
		time.Sleep(5 * time.Millisecond)
		ch.Sever(ControlAddr)
		runNeighbors(t, nmux)

		if w := tally.wrong.Load(); w != 0 {
			t.Errorf("%d victim sessions observed corrupted values", w)
		}
	})

	t.Run("faults", func(t *testing.T) {
		c := startTestCluster(t, Options{Workers: 2, Logf: func(string, ...any) {}})
		// Drop/dup/reorder on the victims' control-plane frames. Envelope
		// sequencing must convert every such fault into a connection-level
		// failure confined to the victim mux.
		ch := chaos.New(c.Transport, 42, chaos.Rule{
			Addr:    ControlAddr,
			Drop:    0.05,
			Dup:     0.05,
			Reorder: 0.10,
		})
		vmux := driver.NewMux(ch, 2)
		defer vmux.Close()
		nmux := c.Gateway(2)
		defer nmux.Close()

		var tally victimTally
		startVictims(c, vmux, &tally)
		runNeighbors(t, nmux)

		if w := tally.wrong.Load(); w != 0 {
			t.Errorf("%d victim sessions observed corrupted values", w)
		}
		// Victims may legitimately still be parked in Recv on a conn whose
		// final frame was dropped; the cluster teardown unblocks them. Do
		// not join them here — only the invariants above matter.
		t.Logf("victims finished before teardown: %d/%d", tally.done.Load(), perSide)
	})
}
