package cluster

import (
	"testing"
	"time"

	"nimbus/internal/fn"
	"nimbus/internal/ids"
)

// TestMigrationEdits exercises paper §4.3 / Figure 6: moving a task
// between workers by editing the installed worker templates in place.
func TestMigrationEdits(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 4})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil || len(got) != 1 || got[0] != 4*parts {
		t.Fatalf("pre-migration sum = %v (err %v), want [%d]", got, err, 4*parts)
	}

	// Migrate partition 1 (originally on worker 2) to worker 1.
	var migErr error
	var w1 ids.WorkerID
	c.Controller.Do(func() {
		w1 = c.Controller.ActiveWorkers()[0]
		migErr = c.Controller.Migrate([]ids.VariableID{x.ID}, []int{1}, w1)
	})
	if migErr != nil {
		t.Fatalf("migrate: %v", migErr)
	}

	want := float64(4 * parts)
	for i := 0; i < 3; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatalf("instantiate after migration: %v", err)
		}
		want *= 2
		got, err = d.GetFloats(sum, 0)
		if err != nil || len(got) != 1 || got[0] != want {
			t.Fatalf("post-migration iteration %d: sum = %v (err %v), want [%v]",
				i, got, err, want)
		}
	}

	var edits, built uint64
	c.Controller.Do(func() {
		edits = c.Controller.Stats.EditsSent.Load()
		built = c.Controller.Stats.TemplatesBuilt.Load()
	})
	if edits == 0 {
		t.Errorf("expected edits to be sent, got 0")
	}
	if built != 1 {
		t.Errorf("templates built = %d, want 1 (migration must edit, not reinstall)", built)
	}
}

// TestResizeWorkers exercises paper Figure 9: shrinking the worker set
// generates new worker templates and patches move the data; restoring the
// old set reuses the cached templates.
func TestResizeWorkers(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 4})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	var all []ids.WorkerID
	c.Controller.Do(func() { all = c.Controller.ActiveWorkers() })

	// Shrink to two workers.
	var rerr error
	c.Controller.Do(func() { rerr = c.Controller.SetActive(all[:2]) })
	if rerr != nil {
		t.Fatalf("shrink: %v", rerr)
	}
	want := float64(2 * parts)
	for i := 0; i < 2; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
		want *= 2
		got, err := d.GetFloats(sum, 0)
		if err != nil || len(got) != 1 || got[0] != want {
			t.Fatalf("shrunk iteration %d: sum = %v (err %v), want [%v]", i, got, err, want)
		}
	}

	// Restore all four workers: cached templates revalidate, data patches
	// back out.
	c.Controller.Do(func() { rerr = c.Controller.SetActive(all) })
	if rerr != nil {
		t.Fatalf("restore: %v", rerr)
	}
	for i := 0; i < 2; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
		want *= 2
		got, err := d.GetFloats(sum, 0)
		if err != nil || len(got) != 1 || got[0] != want {
			t.Fatalf("restored iteration %d: sum = %v (err %v), want [%v]", i, got, err, want)
		}
	}

	var built, patches uint64
	c.Controller.Do(func() {
		built = c.Controller.Stats.TemplatesBuilt.Load()
		patches = c.Controller.Stats.PatchesBuilt.Load()
	})
	// One build at recording, one for the shrunk set; the restore reuses
	// the original cached assignment.
	if built != 2 {
		t.Errorf("templates built = %d, want 2 (restore must reuse the cache)", built)
	}
	if patches == 0 {
		t.Errorf("expected patches to move partition data on resize")
	}
}

// TestPatchCache exercises paper §4.2: alternating between two basic
// blocks exercises the patch path on each transition; after the first
// transition the cached patch is replayed with a single message.
func TestPatchCache(t *testing.T) {
	reg := testRegistry(t)
	// copyval writes its single read into its single write.
	copyval := ids.FunctionID(200)
	reg.MustRegister(copyval, "test/copyval", func(cx *fn.Ctx) error {
		cx.SetWrite(0, append([]byte(nil), cx.Read(0)...))
		return nil
	})
	c := startTestCluster(t, Options{Workers: 4, Registry: reg})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 4
	x := d.MustVar("x", parts)
	s := d.MustVar("s", 1)
	y := d.MustVar("y", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}

	// Block A: reduce x into scalar s (s written at worker 1).
	if err := d.BeginTemplate("A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), s.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("A"); err != nil {
		t.Fatal(err)
	}
	// Block B: broadcast-read s into every y partition. Its preconditions
	// require s to be latest on every worker.
	if err := d.BeginTemplate("B"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(copyval, parts, nil, s.ReadShared(), y.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("B"); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Alternate A and B. Every A rewrites s at one worker, staling the
	// other replicas, so every A→B transition needs the same patch.
	for i := 0; i < 4; i++ {
		if err := d.Instantiate("A"); err != nil {
			t.Fatal(err)
		}
		if err := d.Instantiate("B"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.GetFloats(y, parts-1)
	if err != nil || len(got) != 1 || got[0] != parts {
		t.Fatalf("y = %v (err %v), want [%d]", got, err, parts)
	}

	var builtPatches, hits uint64
	c.Controller.Do(func() {
		builtPatches = c.Controller.Stats.PatchesBuilt.Load()
		hits = c.Controller.Stats.PatchCacheHits.Load()
	})
	if builtPatches == 0 {
		t.Fatalf("expected at least one patch to be built")
	}
	if hits == 0 {
		t.Errorf("expected patch cache hits on repeated A→B transitions")
	}
	if builtPatches > 2 {
		t.Errorf("patches built = %d; repeated transitions should hit the cache", builtPatches)
	}
}

// TestFaultRecovery exercises paper §4.4: checkpoint, kill a worker,
// verify the job completes with correct results after recovery.
func TestFaultRecovery(t *testing.T) {
	c := startTestCluster(t, Options{
		Workers:          4,
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
	})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Work after the checkpoint: double once.
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Kill a worker; the controller reverts to the checkpoint and replays
	// the double.
	c.KillWorker(2)

	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	if len(got) != 1 || got[0] != 2*parts {
		t.Fatalf("sum after recovery = %v, want [%d]", got, 2*parts)
	}

	var recoveries uint64
	c.Controller.Do(func() { recoveries = c.Controller.Stats.Recoveries.Load() })
	if recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", recoveries)
	}
}
