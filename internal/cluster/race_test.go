//go:build race

package cluster

// raceEnabled scales down the heaviest load tests under the race
// detector, whose memory and scheduling overhead on a 10k-session herd
// causes GC pauses long enough to blow the tight heartbeat windows of
// unrelated tests later in the package run.
const raceEnabled = true
