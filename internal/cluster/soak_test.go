package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/chaos"
	"nimbus/internal/cluster/leakcheck"
	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/params"
	"nimbus/internal/transport"
)

// The chaos soak harness: every scenario runs under a fixed seed so a CI
// failure replays identically on a laptop. Faults are the recoverable
// kind the product has an answer for — controller kill, worker kill
// mid-takeover, network partition during a predicate loop, delayed
// frames on the control and data planes, spill ENOSPC — and every run
// must end in a bit-identical result or a clean typed error, with the
// driver journal and the controller's applied count in lockstep and no
// goroutine left behind. Destructive faults with no recovery story
// (dropped or truncated control frames) are exercised against the chaos
// layer itself in internal/chaos.

// soakSeeds are the three fixed CI seeds. Adding a seed here adds a full
// subtest per scenario; changing one changes every schedule digest.
var soakSeeds = []uint64{0xC0FFEE, 0x5EED01, 0x0DDBA11}

// soakRules is the standing fault schedule for failover soaks: seeded
// delay jitter on the control link and both data links. Delays are the
// strongest fault that stays lossless — every protocol invariant must
// hold under arbitrary reordering of *timing*, with content intact.
func soakRules() []chaos.Rule {
	return []chaos.Rule{
		{Addr: ControlAddr, DelayProb: 0.05, Delay: time.Millisecond},
		{Addr: "nimbus/data/1", DelayProb: 0.1, Delay: 500 * time.Microsecond},
		{Addr: "nimbus/data/2", DelayProb: 0.1, Delay: 500 * time.Microsecond},
		{Addr: "nimbus/data/3", DelayProb: 0.1, Delay: 500 * time.Microsecond},
	}
}

// soakKmeansCfg is lighter than the failover acceptance config: the soak
// runs it once per seed.
func soakKmeansCfg() kmeans.Config {
	return kmeans.Config{Partitions: 6, K: 3, Dims: 2, PointsPerPart: 3000, Seed: 11}
}

func soakKmeans(c *Cluster, iters int) ([]byte, *driver.Driver, error) {
	d, err := c.Driver("soak-kmeans")
	if err != nil {
		return nil, nil, err
	}
	j, err := kmeans.Setup(d, soakKmeansCfg())
	if err != nil {
		return nil, d, err
	}
	if err := j.InstallTemplate(); err != nil {
		return nil, d, err
	}
	for i := 0; i < iters; i++ {
		if err := j.Iterate(); err != nil {
			return nil, d, err
		}
		if _, err := j.ShiftValue(); err != nil {
			return nil, d, err
		}
	}
	cents, err := d.Get(j.Centroids, 0)
	return cents, d, err
}

// TestSoakKmeansControllerKillUnderChaos kills the primary mid-run under
// seeded delay jitter on every link, for each CI seed. The promoted
// standby finishes the job bit-identically to an undisturbed run, the
// driver journal and applied count reconcile exactly, and the schedule
// digest proves the fault plan is a pure function of (seed, rules).
func TestSoakKmeansControllerKillUnderChaos(t *testing.T) {
	const iters = 6
	refReg := testRegistry(t)
	kmeans.Register(refReg)
	ref := startTestCluster(t, Options{Workers: 3, Slots: 2, Registry: refReg})
	refCents, refD, err := soakKmeans(ref, iters)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refD.Close()

	for _, seed := range soakSeeds {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			leakcheck.Check(t)
			reg := testRegistry(t)
			kmeans.Register(reg)
			c := startTestCluster(t, Options{
				Workers: 3, Slots: 2, Registry: reg,
				LeaseTTL:    150 * time.Millisecond,
				AutoStandby: true,
				ChaosSeed:   seed,
				ChaosRules:  soakRules(),
			})
			// Reproducibility contract: an independently built transport
			// under the same (seed, rules) plans the same faults.
			if got, want := c.Chaos.ScheduleDigest(),
				chaos.New(transport.NewMem(0), seed, soakRules()...).ScheduleDigest(); got != want {
				t.Fatalf("schedule digest %x not reproducible (independent build: %x)", got, want)
			}

			type progRes struct {
				cents []byte
				d     *driver.Driver
				err   error
			}
			resCh := make(chan progRes, 1)
			go func() {
				cents, d, err := soakKmeans(c, iters)
				resCh <- progRes{cents, d, err}
			}()

			deadline := time.Now().Add(10 * time.Second)
			for totalActivations(c) < uint64(3*len(c.Workers)) && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
			c.KillController()
			promoted, err := c.AwaitPromotion(10 * time.Second)
			if err != nil {
				t.Fatalf("takeover: %v", err)
			}

			var res progRes
			select {
			case res = <-resCh:
			case <-time.After(60 * time.Second):
				t.Fatal("driver program hung after failover under chaos")
			}
			if res.err != nil {
				t.Fatalf("soak run: %v", res.err)
			}
			if !bytes.Equal(res.cents, refCents) {
				t.Fatalf("centroids diverged under seed %#x:\n got %x\nwant %x", seed, res.cents, refCents)
			}
			if got, want := promoted.JobApplied(res.d.Job()), res.d.OpsSent(); got != want {
				t.Errorf("applied ops = %d, driver journaled %d", got, want)
			}
			var dropped uint64
			for _, w := range c.Workers {
				dropped += w.Stats.DroppedReports.Load()
			}
			if dropped != 0 {
				t.Errorf("workers dropped %d buffered reports", dropped)
			}
			res.d.Close()
		})
	}
}

// TestSoakPartitionDuringLoopChaos isolates the primary mid-
// InstantiateWhile: a half-open partition blackholes everything the
// primary sends (lease renewals included), the standby's lease runs out
// and it promotes, and the deposed primary is killed once fenced. The
// in-flight loop resolves with the typed ErrLoopInterrupted — its state
// died with the old controller — while the session itself survives:
// journal and applied count reconcile and fresh work runs to the right
// answer.
func TestSoakPartitionDuringLoopChaos(t *testing.T) {
	leakcheck.Check(t)
	seed := soakSeeds[0]
	reg := testRegistry(t)
	kmeans.Register(reg)
	const leaseTTL = 150 * time.Millisecond
	c := startTestCluster(t, Options{
		Workers: 2, Slots: 2, Registry: reg,
		LeaseTTL:  leaseTTL,
		ChaosSeed: seed,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatal(err)
	}
	d, err := c.Driver("soak-partition")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeans.Config{Partitions: 4, K: 2, Dims: 2, PointsPerPart: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		t.Fatal(err)
	}

	old := c.Controller
	loopFut := d.InstantiateWhileAsync(kmeans.IterateBlock, j.Shift.AtLeast(0, 0), 200)

	// Let the loop get going, then cut every frame the primary sends —
	// worker commands, driver replies and lease renewals alike vanish.
	deadline := time.Now().Add(10 * time.Second)
	for old.Stats.Instantiations.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Chaos.Partition(ControlAddr, chaos.FromListener)

	// The starved standby begins promoting once the lease lapses, but it
	// cannot finish — the control endpoint stays bound by the deposed
	// primary, so promote() spins in bind-retry and Promoted() will not
	// close yet. Give the partition a few TTLs to starve the lease, then
	// fence the old primary; only then can the promotion handshake land.
	time.Sleep(3 * leaseTTL)
	c.Chaos.Heal(ControlAddr)
	old.Kill()
	promoted, err := c.AwaitPromotion(10 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}

	if _, err := loopFut.Wait(); err == nil {
		// The loop slipped in before the partition bit — legal, just note
		// it; the interruption path did not run this time.
		t.Log("loop completed before the partition took effect")
	} else if !errors.Is(err, driver.ErrLoopInterrupted) {
		t.Fatalf("interrupted loop returned %v, want ErrLoopInterrupted", err)
	}

	// The session survives the interruption: the reattached driver and
	// the promoted controller agree on what was applied, and new work
	// behaves.
	if err := d.Barrier(); err != nil {
		t.Fatalf("barrier after interruption: %v", err)
	}
	if got, want := promoted.JobApplied(d.Job()), d.OpsSent(); got != want {
		t.Errorf("applied ops = %d, driver journaled %d", got, want)
	}
	if promoted.Stats.Takeovers.Load() == 0 {
		t.Error("promoted controller recorded no takeovers")
	}

	d2, err := c.Driver("soak-partition-after")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	const parts = 4
	x := d2.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d2.PutFloats(x, p, []float64{1.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d2.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		got, err := d2.GetFloats(x, p)
		if err != nil {
			t.Fatalf("get x[%d]: %v", p, err)
		}
		if len(got) != 1 || got[0] != 3 {
			t.Fatalf("x[%d] = %v after recovery, want [3]", p, got)
		}
	}
}

// soakShuffle runs one grouped shuffle of parts×size deterministic
// partitions and returns the FNV digest sum the cluster computed plus the
// locally computed expectation.
func soakShuffle(t *testing.T, c *Cluster, varName string, parts, size int) (got, want float64) {
	t.Helper()
	d, err := c.Driver("soak-shuffle-" + varName)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar(varName, parts)
	h := d.MustVar(varName+"-digest", 1)
	for p := 0; p < parts; p++ {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte((i*2654435761 + p*131) >> 5)
		}
		hs := fnv.New32a()
		hs.Write(data)
		want += float64(hs.Sum32())
		if err := d.Put(x, p, data); err != nil {
			t.Fatalf("put %s[%d]: %v", varName, p, err)
		}
	}
	if err := d.Submit(fnHashAll, 1, nil, x.ReadGrouped(), h.WriteShared()); err != nil {
		t.Fatal(err)
	}
	vals, err := d.GetFloats(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("digest result = %v", vals)
	}
	return vals[0], want
}

// soakShuffleRegistry builds the registry for the shuffle soaks (fnHashAll
// is shared with shuffle_test.go).
func soakShuffleRegistry(t *testing.T) *fn.Registry {
	reg := testRegistry(t)
	reg.MustRegister(fnHashAll, "test/fnv-all", func(c *fn.Ctx) error {
		sum := 0.0
		for i := 0; i < c.NumReads(); i++ {
			h := fnv.New32a()
			h.Write(c.Read(i))
			sum += float64(h.Sum32())
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{sum}).Blob())
		return nil
	})
	return reg
}

// TestSoakShuffleDelayedCreditsChaos streams large chunked transfers
// whose chunks and credits are delayed by the seeded schedule: the
// credit window stalls and resumes out of phase, transfers spill at the
// bounded receiver, and the reassembled bytes must still be
// bit-identical for every CI seed.
func TestSoakShuffleDelayedCreditsChaos(t *testing.T) {
	for _, seed := range soakSeeds {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			leakcheck.Check(t)
			c := startTestCluster(t, Options{
				Workers:  2,
				Registry: soakShuffleRegistry(t),
				// Chunks stream under credit flow control and must spill:
				// the receive budget is a fraction of one partition.
				ChunkSize:  32 << 10,
				RecvBudget: 64 << 10,
				ChaosSeed:  seed,
				ChaosRules: []chaos.Rule{
					{Addr: "nimbus/data/1", DelayProb: 0.2, Delay: 500 * time.Microsecond},
					{Addr: "nimbus/data/2", DelayProb: 0.2, Delay: 500 * time.Microsecond},
				},
			})
			got, want := soakShuffle(t, c, "x", 4, 256<<10)
			if got != want {
				t.Fatalf("digest sum = %v, want %v: delayed credits corrupted the shuffle", got, want)
			}
			var xfers, spills uint64
			for _, w := range c.Workers {
				xfers += w.Stats.XfersRecv.Load()
				spills += w.Stats.Spills.Load()
			}
			if xfers == 0 {
				t.Fatal("no chunked transfers crossed workers")
			}
			if spills == 0 {
				t.Error("bounded receiver never spilled under delay jitter")
			}
		})
	}
}

// TestSoakSpillFaultFallbackChaos arms spill ENOSPC on every worker: a
// transfer that would spill finds the disk full, falls back to RAM
// buffering, and still reassembles bit-identically. Disarming the fault
// restores the spill path.
func TestSoakSpillFaultFallbackChaos(t *testing.T) {
	leakcheck.Check(t)
	c := startTestCluster(t, Options{
		Workers:    2,
		Registry:   soakShuffleRegistry(t),
		ChunkSize:  32 << 10,
		RecvBudget: 64 << 10,
	})
	enospc := errors.New("no space left on device")
	for _, w := range c.Workers {
		w.Spill().SetFault(func(op string) error {
			if op == "create" {
				return enospc
			}
			return nil
		})
	}
	got, want := soakShuffle(t, c, "a", 4, 256<<10)
	if got != want {
		t.Fatalf("digest sum = %v, want %v: ENOSPC fallback corrupted the shuffle", got, want)
	}
	var spills uint64
	for _, w := range c.Workers {
		spills += w.Stats.Spills.Load()
	}
	if spills != 0 {
		t.Fatalf("Spills = %d with spill creation failing; fallback did not engage", spills)
	}

	for _, w := range c.Workers {
		w.Spill().SetFault(nil)
	}
	got, want = soakShuffle(t, c, "b", 4, 256<<10)
	if got != want {
		t.Fatalf("digest sum = %v, want %v after disarming the fault", got, want)
	}
	for _, w := range c.Workers {
		spills += w.Stats.Spills.Load()
	}
	if spills == 0 {
		t.Error("spill path did not resume after the fault was disarmed")
	}
}
