package cluster

import (
	"testing"
	"time"

	"nimbus/internal/app/lr"
	"nimbus/internal/fn"
)

// TestSteadyStateFanoutOneFramePerWorker asserts the paper's "n+1 control
// messages in the steady state" at the transport-frame level: after warm-up
// (validation and patching done), one InstantiateBlock over a Mem cluster
// of N workers produces exactly N transport frames — the coalescer packs
// everything staged per worker into a single frame.
func TestSteadyStateFanoutOneFramePerWorker(t *testing.T) {
	const workers = 4
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := Start(Options{Workers: workers, Slots: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	d, err := c.Driver("fastpath")
	if err != nil {
		t.Fatal(err)
	}
	j, err := lr.Setup(d, lr.Config{
		Partitions: 8, ReduceFan: 2, Simulated: true,
		TaskDuration: 100 * time.Microsecond, ReduceDuration: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplates(); err != nil {
		t.Fatal(err)
	}
	// Warm-up: the first instantiation validates preconditions and may
	// install and run a patch; the second runs auto-validated.
	for i := 0; i < 2; i++ {
		if err := j.Optimize(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	stats := &c.Controller.Stats
	frames0 := stats.FramesToWorkers.Load()
	msgs0 := stats.MsgsToWorkers.Load()
	const iters = 3
	for i := 0; i < iters; i++ {
		if err := j.Optimize(); err != nil {
			t.Fatal(err)
		}
		if err := d.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	frames := stats.FramesToWorkers.Load() - frames0
	msgs := stats.MsgsToWorkers.Load() - msgs0
	if got, want := frames, uint64(workers*iters); got != want {
		t.Fatalf("steady-state fan-out sent %d frames over %d instantiations, want exactly %d (%d workers); %d messages",
			got, iters, want, workers, msgs)
	}
	// Steady state sends exactly one InstantiateTemplate per worker, so
	// messages == frames here; a mismatch means something extra leaked
	// into the steady-state path.
	if msgs != frames {
		t.Fatalf("steady state staged %d messages into %d frames; expected 1:1", msgs, frames)
	}
}

// TestInstallFanoutCoalesces asserts the coalescer packs the first-use
// burst — patch install, patch instantiate, and template instantiate for a
// worker — into one frame per worker: frames stay at one per worker even
// when multiple messages are staged.
func TestInstallFanoutCoalesces(t *testing.T) {
	const workers = 3
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := Start(Options{Workers: workers, Slots: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	d, err := c.Driver("fastpath")
	if err != nil {
		t.Fatal(err)
	}
	j, err := lr.Setup(d, lr.Config{
		Partitions: 6, ReduceFan: 2, Simulated: true,
		TaskDuration: 100 * time.Microsecond, ReduceDuration: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplates(); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	stats := &c.Controller.Stats
	frames0 := stats.FramesToWorkers.Load()
	msgs0 := stats.MsgsToWorkers.Load()
	// First instantiation after install: validation fails over the
	// recording's leftovers, so workers receive patch + instantiation
	// messages in one event.
	if err := j.Optimize(); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	frames := stats.FramesToWorkers.Load() - frames0
	msgs := stats.MsgsToWorkers.Load() - msgs0
	if frames > workers {
		t.Fatalf("first instantiation sent %d frames for %d workers (%d messages); the fan-out must coalesce to at most one frame per worker",
			frames, workers, msgs)
	}
}
