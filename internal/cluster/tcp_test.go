package cluster

import (
	"testing"

	"nimbus/internal/controller"
	"nimbus/internal/driver"
	"nimbus/internal/transport"
	"nimbus/internal/worker"
)

// TestTCPEndToEnd runs a controller, two workers and a driver over real
// TCP sockets — the deployment path of cmd/nimbus-controller and
// cmd/nimbus-worker — and executes a templated job.
func TestTCPEndToEnd(t *testing.T) {
	reg := testRegistry(t)
	tr := transport.TCP{}
	c := controller.New(controller.Config{
		ControlAddr: "127.0.0.1:0",
		Transport:   tr,
		Logf:        t.Logf,
	})
	if err := c.Start(); err != nil {
		t.Fatalf("controller: %v", err)
	}
	defer c.Stop()

	var workers []*worker.Worker
	for i := 0; i < 2; i++ {
		// Workers must listen on a concrete port peers can reach; pick one
		// via a throwaway listener.
		l, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr()
		l.Close()
		w := worker.New(worker.Config{
			ControlAddr: c.Addr(),
			DataAddr:    addr,
			Transport:   tr,
			Slots:       4,
			Registry:    reg,
			Logf:        t.Logf,
		})
		if err := w.Start(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Stop()
		workers = append(workers, w)
	}

	d, err := driver.Connect(tr, c.Addr(), "tcp-test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 4
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(got) != 1 || got[0] != 8*parts {
		t.Fatalf("sum over TCP = %v, want [%d]", got, 8*parts)
	}
}
