package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/chaos"
	"nimbus/internal/cluster/leakcheck"
	"nimbus/internal/driver"
	"nimbus/internal/durable"
	"nimbus/internal/ids"
)

// These tests close the PR 6 takeover gaps under injected faults: a
// worker that dies permanently during a controller failover is evicted
// from the rejoin roster instead of stalling takeover forever, restored
// jobs whose driver never comes back are torn down at the reattach
// deadline, the failover journal stays bounded across checkpoints, and a
// checkpoint whose durable saves fail surfaces a typed error without
// corrupting the previous checkpoint. They run in the chaos soak CI
// smoke (-race -run 'Soak|Evict|Chaos').

// TestEvictDeadWorkerDuringTakeover is the tentpole acceptance test: the
// controller is killed mid-run and one worker dies for good in the same
// instant. The promoted standby's rejoin roster lists three workers but
// only two ever reconnect; the heartbeat-timeout eviction strikes the
// dead one, takeover proceeds on the survivors, and the job finishes with
// centroids bit-identical to an undisturbed run.
func TestEvictDeadWorkerDuringTakeover(t *testing.T) {
	leakcheck.Check(t)
	const iters = 8

	refReg := testRegistry(t)
	kmeans.Register(refReg)
	ref := startTestCluster(t, Options{Workers: 3, Slots: 2, Registry: refReg})
	refCents, refD, err := runKmeansExplicit(ref, iters)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refD.Close()

	reg := testRegistry(t)
	kmeans.Register(reg)
	c := startTestCluster(t, Options{
		Workers: 3, Slots: 2, Registry: reg,
		LeaseTTL:         150 * time.Millisecond,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 600 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}

	type progRes struct {
		cents []byte
		d     *driver.Driver
		err   error
	}
	resCh := make(chan progRes, 1)
	go func() {
		cents, d, err := runKmeansExplicit(c, iters)
		resCh <- progRes{cents, d, err}
	}()

	// Wait until the run is well underway, then kill the controller and,
	// in the same breath, worker 0 — permanently. Its reconnect loop dies
	// with it, so the promoted standby can only finish takeover by
	// evicting it.
	deadline := time.Now().Add(10 * time.Second)
	for totalActivations(c) < uint64(3*len(c.Workers)) && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	c.KillController()
	c.KillWorker(0)

	promoted, err := c.AwaitPromotion(10 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}

	var res progRes
	select {
	case res = <-resCh:
	case <-time.After(60 * time.Second):
		t.Fatal("driver program hung: takeover stalled on the dead worker")
	}
	if res.err != nil {
		t.Fatalf("failover run: %v", res.err)
	}
	if !bytes.Equal(res.cents, refCents) {
		t.Fatalf("centroids diverged after eviction takeover:\n got %x\nwant %x", res.cents, refCents)
	}
	if got := promoted.Stats.Evictions.Load(); got < 1 {
		t.Errorf("Evictions = %d, want >= 1: takeover completed without evicting the dead worker", got)
	}
	if got, want := promoted.JobApplied(res.d.Job()), res.d.OpsSent(); got != want {
		t.Errorf("applied ops = %d, driver journaled %d", got, want)
	}
	if promoted.Stats.Takeovers.Load() == 0 {
		t.Error("promoted controller recorded no takeovers")
	}
	res.d.Close()
}

// TestChaosAutoStandbyDoubleFailover: with AutoStandby a fresh standby
// attaches to each promoted primary, so the cluster survives a second
// controller kill without operator action.
func TestChaosAutoStandbyDoubleFailover(t *testing.T) {
	leakcheck.Check(t)
	const parts = 4
	c := startTestCluster(t, Options{
		Workers: 2, Slots: 2,
		LeaseTTL:    150 * time.Millisecond,
		AutoStandby: true,
	})
	d, err := c.Driver("double-failover")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	double := func() {
		t.Helper()
		if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
			t.Fatal(err)
		}
		if err := d.Barrier(); err != nil {
			t.Fatal(err)
		}
	}

	double()
	for round := 0; round < 2; round++ {
		c.KillController()
		promoted, err := c.AwaitPromotion(10 * time.Second)
		if err != nil {
			t.Fatalf("failover %d: %v", round+1, err)
		}
		double()
		if promoted.Stats.Takeovers.Load() == 0 {
			t.Errorf("failover %d: promoted controller recorded no takeovers", round+1)
		}
	}

	for p := 0; p < parts; p++ {
		got, err := d.GetFloats(x, p)
		if err != nil {
			t.Fatalf("get x[%d]: %v", p, err)
		}
		if len(got) != 1 || got[0] != 8 {
			t.Fatalf("x[%d] = %v after three doubles across two failovers, want [8]", p, got)
		}
	}
}

// TestChaosJournalBoundedByCheckpoints pins the journal-trim satellite: a
// long run that checkpoints periodically must not accrete its whole op
// history in the driver's failover journal — every BarrierDone carries
// the controller's applied count and releases the journal prefix.
func TestChaosJournalBoundedByCheckpoints(t *testing.T) {
	const parts = 4
	c := startTestCluster(t, Options{Workers: 2})
	d, err := c.Driver("journal-bound")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	x := d.MustVar("x", parts)
	for round := 0; round < 6; round++ {
		for p := 0; p < parts; p++ {
			if err := d.PutFloats(x, p, []float64{float64(round)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
			t.Fatal(err)
		}
		if d.JournalLen() == 0 {
			t.Fatalf("round %d: journal empty before the checkpoint; nothing would survive a failover", round)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		if got := d.JournalLen(); got != 0 {
			t.Fatalf("round %d: journal holds %d ops after checkpoint commit, want 0", round, got)
		}
	}
}

// TestChaosJournalTrimAfterStandbyLoss: once a standby detaches, the
// controller's safe-applied count freezes at the last replica ack and the
// driver journal grows — deliberately, since a stale shadow might still
// promote. Past the stale-shadow horizon (the detached standby's lease
// long expired) the controller reverts to its own applied count and the
// next barrier trims the journal back to empty.
func TestChaosJournalTrimAfterStandbyLoss(t *testing.T) {
	const parts = 2
	const ttl = 25 * time.Millisecond
	c := startTestCluster(t, Options{Workers: 2, LeaseTTL: ttl})
	s, err := c.StartStandby()
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Driver("journal-horizon")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	// With the standby attached the replica acks trail the applied count
	// by at most the in-flight window; barrier until the journal drains.
	deadline := time.Now().Add(5 * time.Second)
	for d.JournalLen() > 0 && time.Now().Before(deadline) {
		if err := d.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.JournalLen(); got != 0 {
		t.Fatalf("journal holds %d ops with a live standby acking", got)
	}

	s.Stop()
	// New work after the standby detached: the frozen replica ack pins
	// the journal.
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	if d.JournalLen() == 0 {
		t.Fatal("journal empty right after standby loss: safe-applied did not freeze at the replica ack")
	}

	// Past the stale-shadow horizon the detached standby's lease is long
	// expired; the next barrier trims everything.
	time.Sleep(25*ttl + 100*time.Millisecond)
	deadline = time.Now().Add(5 * time.Second)
	for d.JournalLen() > 0 && time.Now().Before(deadline) {
		if err := d.Barrier(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d.JournalLen(); got != 0 {
		t.Fatalf("journal still holds %d ops past the stale-shadow horizon", got)
	}
}

// TestEvictJobWhenDriverNeverReattaches: a promoted controller tears down
// restored jobs whose driver never reattaches within ReattachDeadline
// instead of parking them forever; the late driver gets a clean "no such
// job" session error.
func TestEvictJobWhenDriverNeverReattaches(t *testing.T) {
	leakcheck.Check(t)
	const parts = 2
	c := startTestCluster(t, Options{
		Workers:          2,
		LeaseTTL:         120 * time.Millisecond,
		ReattachDeadline: 400 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatal(err)
	}
	d, err := c.Driver("absent-driver")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	// The driver goes idle: it only notices a failover on its next
	// request, so it will not reattach on its own.
	c.KillController()
	promoted, err := c.AwaitPromotion(10 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var jobs []ids.JobID
	for time.Now().Before(deadline) {
		promoted.Do(func() { jobs = promoted.Jobs() })
		if len(jobs) == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(jobs) != 0 {
		t.Fatalf("restored jobs %v still parked past the reattach deadline", jobs)
	}
	if got := promoted.Stats.JobsExpired.Load(); got < 1 {
		t.Errorf("JobsExpired = %d, want >= 1", got)
	}

	// The driver's eventual return finds its job gone — a session error,
	// not a hang.
	if _, err := d.GetFloats(x, 0); err == nil {
		t.Fatal("stale driver's request succeeded against a torn-down job")
	}
}

// TestChaosCheckpointSaveFailurePropagates is the durable fault
// satellite: when every durable save of a checkpoint fails (ENOSPC), the
// checkpoint aborts with a typed driver error, the previous checkpoint
// stays authoritative, and a later worker failure recovers correctly
// from it.
func TestChaosCheckpointSaveFailurePropagates(t *testing.T) {
	const parts = 4
	fs := chaos.NewFaultStore(durable.NewMem())
	c := startTestCluster(t, Options{
		Workers:          3,
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatTimeout: 200 * time.Millisecond,
		Durable:          fs,
	})
	d, err := c.Driver("ckpt-fault")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("healthy checkpoint: %v", err)
	}

	// Disk full: the next checkpoint's saves all fail. The driver gets
	// the typed error; the job itself is unharmed.
	fs.FailSaves(errors.New("no space left on device"))
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	err = d.Checkpoint()
	if !errors.Is(err, driver.ErrCheckpointFailed) {
		t.Fatalf("checkpoint under ENOSPC returned %v, want ErrCheckpointFailed", err)
	}
	if got := c.Controller.Stats.CkptsAborted.Load(); got != 1 {
		t.Errorf("CkptsAborted = %d, want 1", got)
	}
	if fs.Faults() == 0 {
		t.Fatal("fault store injected nothing; the checkpoint failed for another reason")
	}
	fs.Heal()

	// Kill a worker: recovery reverts to the committed checkpoint and
	// replays the oplog suffix — including the post-checkpoint double the
	// aborted checkpoint must not have trimmed.
	c.KillWorker(2)
	sum := d.MustVar("sum", 1)
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	if len(got) != 1 || got[0] != 4*parts {
		t.Fatalf("sum after recovery = %v, want [%d]: the aborted checkpoint corrupted recovery", got, 4*parts)
	}
	if c.Controller.Stats.Recoveries.Load() == 0 {
		t.Error("worker kill triggered no recovery")
	}
}
