package cluster

import (
	"strings"
	"testing"

	"nimbus/internal/fn"
	"nimbus/internal/params"
)

// TestDriverErrors verifies the controller surfaces protocol misuse to
// the driver instead of wedging the job.
func TestDriverErrors(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 2})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Instantiating an unknown template errors on the next synchronous op.
	if err := d.Instantiate("nope"); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err == nil || !strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("expected unknown-template error, got %v", err)
	}
}

// TestPerTaskParamsInTemplate verifies templates reject per-task
// parameterized stages.
func TestPerTaskParamsInTemplate(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 2})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar("x", 2)
	if err := d.BeginTemplate("bad"); err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitPerTask(fn.FuncNop, 2,
		[]params.Blob{{1}, {2}}, x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err == nil {
		t.Fatal("expected per-task-params-in-template error")
	}
}

// TestEmptyGet reads a variable that was never written.
func TestEmptyGet(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 2})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar("x", 2)
	got, err := d.Get(x, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("unwritten variable read %v", got)
	}
}

// TestManyIterationsBounded runs enough templated iterations to exercise
// the done-set watermark pruning and verifies workers stay healthy.
func TestManyIterationsBounded(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 3})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const parts = 6
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != parts {
		t.Fatalf("sum = %v", got)
	}
	var auto uint64
	c.Controller.Do(func() { auto = c.Controller.Stats.AutoValidations.Load() })
	if auto < 150 {
		t.Errorf("auto-validations = %d of 200 iterations", auto)
	}
}

// TestCheckpointAndContinue verifies checkpoints commit and the job keeps
// running afterwards.
func TestCheckpointAndContinue(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 3})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar("x", 3)
	for p := 0; p < 3; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if c.Durable.Len() == 0 {
		t.Fatal("checkpoint saved nothing")
	}
	if err := d.Submit(fnDouble, 3, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(x, 2)
	if err != nil || len(got) != 1 || got[0] != 4 {
		t.Fatalf("post-checkpoint compute = %v (err %v)", got, err)
	}
}
