// Package cluster assembles in-process Nimbus clusters: one controller and
// N workers over the in-memory transport with a configurable latency
// model. It is the testbed substitute for the paper's EC2 deployment —
// every control-plane code path (encoding, queueing, dispatch, templates)
// is the production one; only the wires are in-memory.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"nimbus/internal/chaos"
	"nimbus/internal/controller"
	"nimbus/internal/driver"
	"nimbus/internal/durable"
	"nimbus/internal/fleet"
	"nimbus/internal/fn"
	"nimbus/internal/transport"
	"nimbus/internal/worker"
)

// ControlAddr is the controller's address on the cluster transport.
const ControlAddr = "nimbus/controller"

// Options configures a cluster.
type Options struct {
	// Workers is the number of worker nodes (default 4).
	Workers int
	// Slots is the per-worker executor concurrency (default 8, matching
	// the paper's c3.2xlarge workers).
	Slots int
	// Latency is the one-way message latency (default 0; the scaling
	// experiments use 100µs, an EC2 placement-group hop).
	Latency time.Duration
	// Mode selects the controller's scheduling regime.
	Mode controller.Mode
	// CentralPerTaskCost calibrates the central baseline's per-task
	// scheduling cost (paper: 166µs for Spark 2.0).
	CentralPerTaskCost time.Duration
	// LivePerTaskCost calibrates non-templated scheduling in Nimbus mode
	// (paper: 134µs/task).
	LivePerTaskCost time.Duration
	// Registry supplies application functions (default: built-ins only).
	Registry *fn.Registry
	// HeartbeatEvery / HeartbeatTimeout enable failure detection.
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// LeaseTTL is the controller leadership lease for failover (zero
	// defaults to one second; failover tests shrink it).
	LeaseTTL time.Duration
	// ReattachDeadline bounds how long a promoted controller keeps a
	// restored job whose driver never reattaches (zero = forever); see
	// controller.Config.ReattachDeadline.
	ReattachDeadline time.Duration
	// AutoStandby keeps a hot standby attached automatically: one is
	// started with the cluster, and AwaitPromotion starts a fresh one
	// against each promoted primary so failover capacity is restored
	// without operator action.
	AutoStandby bool
	// ChaosSeed/ChaosRules interpose a chaos.Transport between every node
	// (set either to enable it): deterministic seeded fault schedules on
	// the wires, plus runtime Partition/Heal/Sever via Cluster.Chaos.
	ChaosSeed  uint64
	ChaosRules []chaos.Rule
	// Durable overrides the cluster's checkpoint store (default: a fresh
	// durable.Mem); chaos tests pass a chaos.FaultStore.
	Durable durable.Store
	// BuildParallelism bounds the controller's template-build goroutine
	// pool (0 = GOMAXPROCS, 1 = serial; see controller.Config).
	BuildParallelism int
	// Hooks forwards controller test/fault-injection hooks.
	Hooks controller.Hooks
	// Front-door knobs, forwarded to the controller: live-job cap,
	// admission queue depth, per-tenant fair-share weights and rate
	// limits. Zeroes take the controller defaults (unbounded admission,
	// no queue, equal weights, no rate limit).
	MaxJobs       int
	AdmitQueue    int
	TenantWeights map[string]int
	TenantRate    float64
	TenantBurst   int
	// Data-plane knobs, forwarded to every worker: transfer chunk size,
	// per-peer sender queue bound, receive reassembly budget (past it
	// transfers spill to disk), spill directory, and per-chunk
	// compression. Zeroes take the worker defaults.
	ChunkSize      int
	PeerQueueBytes int64
	RecvBudget     int64
	SpillDir       string
	CompressChunks bool
	// Logf receives diagnostics from all nodes (default: discard).
	Logf func(format string, args ...any)
}

// Cluster is a running in-process Nimbus deployment.
type Cluster struct {
	Transport  *transport.Mem
	Controller *controller.Controller
	Workers    []*worker.Worker
	Durable    *durable.Mem
	Registry   *fn.Registry
	// Standby is the hot-standby controller, if StartStandby was called.
	Standby *controller.Standby
	// Chaos is the fault-injection layer when Options enabled it (nil
	// otherwise); tests drive partitions and severs through it.
	Chaos *chaos.Transport

	opts    Options
	nextIdx int
	// net is the transport every node actually uses: the chaos wrapper
	// when enabled, the raw Mem otherwise. Transport stays the concrete
	// Mem for tests that reach into it.
	net transport.Transport
	// store is the durable store workers write checkpoints to: the
	// Options override when set, the cluster's own Mem otherwise.
	store durable.Store
}

// Start builds and starts a cluster.
func Start(opts Options) (*Cluster, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Slots <= 0 {
		opts.Slots = 8
	}
	if opts.Registry == nil {
		opts.Registry = fn.NewRegistry()
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	c := &Cluster{
		Transport: transport.NewMem(opts.Latency),
		Durable:   durable.NewMem(),
		Registry:  opts.Registry,
		opts:      opts,
	}
	c.net = c.Transport
	if opts.ChaosSeed != 0 || len(opts.ChaosRules) > 0 {
		c.Chaos = chaos.New(c.Transport, opts.ChaosSeed, opts.ChaosRules...)
		c.net = c.Chaos
	}
	c.store = durable.Store(c.Durable)
	if opts.Durable != nil {
		c.store = opts.Durable
	}
	c.Controller = controller.New(c.controllerConfig())
	if err := c.Controller.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		if _, err := c.AddWorker(); err != nil {
			c.Stop()
			return nil, err
		}
	}
	if opts.AutoStandby {
		if _, err := c.StartStandby(); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// controllerConfig builds the controller Config shared by the primary and
// any standby (a promoted standby re-binds the same address).
func (c *Cluster) controllerConfig() controller.Config {
	return controller.Config{
		ControlAddr:        ControlAddr,
		Transport:          c.net,
		Mode:               c.opts.Mode,
		CentralPerTaskCost: c.opts.CentralPerTaskCost,
		LivePerTaskCost:    c.opts.LivePerTaskCost,
		HeartbeatTimeout:   c.opts.HeartbeatTimeout,
		BuildParallelism:   c.opts.BuildParallelism,
		LeaseTTL:           c.opts.LeaseTTL,
		ReattachDeadline:   c.opts.ReattachDeadline,
		MaxJobs:            c.opts.MaxJobs,
		AdmitQueue:         c.opts.AdmitQueue,
		TenantWeights:      c.opts.TenantWeights,
		TenantRate:         c.opts.TenantRate,
		TenantBurst:        c.opts.TenantBurst,
		Hooks:              c.opts.Hooks,
		Logf:               c.opts.Logf,
	}
}

// workerConfig builds the worker Config shared by every startup path —
// fixed-fleet registration (AddWorker) and elastic joins (JoinWorker)
// differ only in the handshake flag.
func (c *Cluster) workerConfig(fleetJoin bool) worker.Config {
	c.nextIdx++
	return worker.Config{
		ControlAddr:    ControlAddr,
		DataAddr:       fmt.Sprintf("nimbus/data/%d", c.nextIdx),
		Transport:      c.net,
		Slots:          c.opts.Slots,
		Registry:       c.Registry,
		Durable:        c.store,
		HeartbeatEvery: c.opts.HeartbeatEvery,
		ChunkSize:      c.opts.ChunkSize,
		PeerQueueBytes: c.opts.PeerQueueBytes,
		RecvBudget:     c.opts.RecvBudget,
		SpillDir:       c.opts.SpillDir,
		CompressChunks: c.opts.CompressChunks,
		FleetJoin:      fleetJoin,
		Logf:           c.opts.Logf,
	}
}

// startWorker starts a worker from cfg and tracks it in the cluster.
func (c *Cluster) startWorker(cfg worker.Config) (*worker.Worker, error) {
	w := worker.New(cfg)
	if err := w.Start(); err != nil {
		return nil, err
	}
	c.Workers = append(c.Workers, w)
	return w, nil
}

// AddWorker starts one more worker and registers it with the controller.
func (c *Cluster) AddWorker() (*worker.Worker, error) {
	return c.startWorker(c.workerConfig(false))
}

// JoinWorker starts one more worker through the elastic-fleet lifecycle:
// it announces itself, is warmed with every live job's active templates,
// and only enters the scheduler's active set at FleetReady. Start returns
// after admission; wait on the worker's Ready channel for warm completion.
func (c *Cluster) JoinWorker() (*worker.Worker, error) {
	return c.startWorker(c.workerConfig(true))
}

// FleetSample adapts the controller's load snapshot to the autoscaler's
// sample type (internal/fleet stays import-free of the control plane).
func (c *Cluster) FleetSample() fleet.Sample {
	s := c.Controller.FleetSample()
	return fleet.Sample{
		Workers:  s.Workers,
		Warming:  s.Warming,
		Draining: s.Draining,
		Jobs:     s.Jobs,
		Slots:    s.Slots,
		Pending:  s.Pending,
	}
}

// prov implements fleet.Provisioner over the in-process cluster: Launch
// starts fleet-joining workers on the Mem transport, Drain retires the
// newest ones through the controller's graceful drain.
type prov struct {
	mu sync.Mutex
	c  *Cluster
}

func (p *prov) Launch(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < n; i++ {
		if _, err := p.c.JoinWorker(); err != nil {
			return err
		}
	}
	return nil
}

func (p *prov) Drain(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ctrl := p.c.Controller
	ctrl.Do(func() { ctrl.DrainWorkers(n) })
	return nil
}

// Provisioner returns a fleet.Provisioner backed by this cluster.
func (c *Cluster) Provisioner() fleet.Provisioner { return &prov{c: c} }

// Autoscaler builds a fleet autoscaler wired to this cluster: load
// samples come from the controller, scaling actions launch or drain
// in-process workers. The caller supplies policy and damping via cfg and
// owns Start/Stop.
func (c *Cluster) Autoscaler(cfg fleet.Config) *fleet.Autoscaler {
	cfg.Sample = c.FleetSample
	cfg.Prov = c.Provisioner()
	if cfg.Logf == nil {
		cfg.Logf = c.opts.Logf
	}
	return fleet.New(cfg)
}

// Driver opens a driver session against the cluster.
func (c *Cluster) Driver(name string) (*driver.Driver, error) {
	return driver.Connect(c.net, ControlAddr, name)
}

// Gateway builds a session multiplexer over the cluster transport: driver
// sessions opened through it share at most conns connections to the
// controller (0 = driver.DefaultMaxConns). Callers pass it as the
// transport to driver.ConnectOpts.
func (c *Cluster) Gateway(conns int) *driver.Mux {
	return driver.NewMux(c.net, conns)
}

// KillWorker abruptly stops worker i (0-based), simulating a failure the
// controller must recover from.
func (c *Cluster) KillWorker(i int) {
	if i < 0 || i >= len(c.Workers) {
		return
	}
	c.Workers[i].Stop()
}

// StartStandby attaches a hot-standby controller to the running primary.
// The standby mirrors the primary's replicated state and promotes itself
// if the primary's leadership lease expires.
func (c *Cluster) StartStandby() (*controller.Standby, error) {
	// Standby-of-standby is not a topology: replication is strictly
	// primary→standby and a standby never re-streams. While an earlier
	// standby is attached and unpromoted, a second attach would chain
	// behind whatever promotes, so reject it outright.
	if s := c.Standby; s != nil {
		select {
		case <-s.Promoted():
		case <-s.Done():
		default:
			return nil, controller.ErrStandbyChain
		}
	}
	s := controller.NewStandby(c.controllerConfig())
	if err := s.Start(); err != nil {
		return nil, err
	}
	c.Standby = s
	return s, nil
}

// KillController terminates the primary abruptly — no Shutdown handshake,
// every connection drops — as a crashed controller process appears to its
// workers, drivers and standby.
func (c *Cluster) KillController() {
	c.Controller.Kill()
}

// AwaitPromotion blocks until the standby has taken over, then adopts the
// promoted controller as the cluster's controller and returns it. With
// Options.AutoStandby a fresh standby is started against the promoted
// primary — its attach dial retries while the takeover binds the control
// address — so the cluster survives a second failover too.
func (c *Cluster) AwaitPromotion(timeout time.Duration) (*controller.Controller, error) {
	if c.Standby == nil {
		return nil, fmt.Errorf("cluster: no standby attached")
	}
	select {
	case <-c.Standby.Promoted():
		c.Controller = c.Standby.Controller()
		if c.opts.AutoStandby {
			if _, err := c.StartStandby(); err != nil {
				return nil, fmt.Errorf("cluster: auto-standby: %w", err)
			}
		}
		return c.Controller, nil
	case <-c.Standby.Done():
		// Done closes after Promoted on a successful takeover; reaching it
		// with no controller means the standby stood down instead.
		if pc := c.Standby.Controller(); pc != nil {
			c.Controller = pc
			return pc, nil
		}
		return nil, fmt.Errorf("cluster: standby stood down: %v", c.Standby.Err())
	case <-time.After(timeout):
		return nil, fmt.Errorf("cluster: standby not promoted within %v", timeout)
	}
}

// Stop shuts the whole cluster down, including a standby and the
// controller it may have promoted.
func (c *Cluster) Stop() {
	c.Controller.Stop()
	if c.Standby != nil {
		c.Standby.Stop()
		if pc := c.Standby.Controller(); pc != nil && pc != c.Controller {
			pc.Stop()
		}
	}
	for _, w := range c.Workers {
		w.Stop()
	}
}
