package cluster

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/controller"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
)

// waitUntil polls cond through the controller's event loop until it holds
// or the deadline passes. Every successful poll is itself proof the loop
// is serving events.
func waitUntil(t *testing.T, c *Cluster, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		var ok bool
		c.Controller.Do(func() { ok = cond() })
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEventLoopLiveDuringBuild is the off-loop pipeline's headline
// property: while a large (>=4k-entry) template build is in flight, the
// event loop keeps processing heartbeats and completion reports. The build
// is stalled via the OnBuildStart hook; during the stall the test observes
// (a) Do round trips served, (b) the completions of 4096 live tasks
// drained to zero, and (c) heartbeats processed across several timeout
// windows without any worker being declared failed.
func TestEventLoopLiveDuringBuild(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var stalls atomic.Int32
	hooks := controller.Hooks{OnBuildStart: func(name string) {
		if name == "big" && stalls.Add(1) == 1 {
			close(entered)
			<-release
		}
	}}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	// The race detector adds scheduling jitter well past 50ms, so widen
	// the timeout window there; the property under test (beats processed
	// across several full windows mid-build) is window-count relative.
	hbTimeout := 50 * time.Millisecond
	if raceEnabled {
		hbTimeout = 250 * time.Millisecond
	}
	c := startTestCluster(t, Options{
		Workers:          4,
		HeartbeatEvery:   5 * time.Millisecond,
		HeartbeatTimeout: hbTimeout,
		Hooks:            hooks,
	})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const bigParts = 4096
	big := d.MustVar("big", bigParts)
	xs := d.MustVar("xs", 4)
	for p := 0; p < 4; p++ {
		if err := d.PutFloats(xs, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Record a >=4k-entry block. The stages execute live while recording;
	// their 4096 completions arrive while the build is stalled.
	if err := d.BeginTemplate("big"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fn.FuncNop, bigParts, nil, big.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, 4, nil, xs.Read(), xs.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("big"); err != nil {
		t.Fatal(err)
	}

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("build never started")
	}
	if got := c.Controller.Stats.BuildsInFlight.Load(); got != 1 {
		t.Fatalf("builds in flight = %d, want 1", got)
	}

	// (b) Completion reports drain while the build is stalled.
	waitUntil(t, c, 5*time.Second, "live-task completions during build",
		func() bool { return c.Controller.OutstandingCommands() == 0 })

	// Queue an instantiation behind the build fence.
	if err := d.Instantiate("big"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, c, 5*time.Second, "instantiation to queue behind the build",
		func() bool { return c.Controller.BuildQueueDepth() == 1 })

	// (c) Ride out several heartbeat-timeout windows mid-build. If the
	// loop were blocked, beats would go unprocessed and the workers would
	// be declared failed once the stall ended.
	time.Sleep(3 * hbTimeout)
	if got := c.Controller.Stats.BuildsInFlight.Load(); got != 1 {
		t.Fatalf("builds in flight after stall = %d, want 1", got)
	}

	close(release)
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(xs, 0)
	if err != nil || len(got) != 1 || got[0] != 4 {
		t.Fatalf("xs after queued instantiation = %v (err %v), want [4]", got, err)
	}

	var size, workers int
	var recoveries, built, insts uint64
	c.Controller.Do(func() {
		size = c.Controller.TemplateByName("big").Active.Size()
		workers = c.Controller.WorkerCount()
		recoveries = c.Controller.Stats.Recoveries.Load()
		built = c.Controller.Stats.TemplatesBuilt.Load()
		insts = c.Controller.Stats.Instantiations.Load()
	})
	if size < 4096 {
		t.Errorf("template has %d entries, want >= 4096", size)
	}
	if workers != 4 || recoveries != 0 {
		t.Errorf("workers=%d recoveries=%d: heartbeats were not processed during the build", workers, recoveries)
	}
	if built != 1 || insts != 1 {
		t.Errorf("built=%d instantiations=%d, want 1/1", built, insts)
	}
	if c.Controller.Stats.BuildNanos.Load() == 0 {
		t.Error("BuildNanos not accounted")
	}
}

// TestSetActiveAtomicOnFailure: when any template's rebuild fails,
// SetActive must commit nothing — placement, active set and every
// template's assignment stay exactly as they were.
func TestSetActiveAtomicOnFailure(t *testing.T) {
	var failing atomic.Bool
	hooks := controller.Hooks{RetargetError: func(name string) error {
		if failing.Load() && name == "B" {
			return errors.New("injected retarget failure")
		}
		return nil
	}}
	c := startTestCluster(t, Options{Workers: 4, Hooks: hooks})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	y := d.MustVar("y", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
		if err := d.PutFloats(y, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, blk := range []struct {
		name string
		vr   func() error
	}{
		{"A", func() error { return d.Submit(fnDouble, parts, nil, x.Read(), x.Write()) }},
		{"B", func() error { return d.Submit(fnSumAll, 1, nil, y.ReadGrouped(), sum.WriteShared()) }},
	} {
		if err := d.BeginTemplate(blk.name); err != nil {
			t.Fatal(err)
		}
		if err := blk.vr(); err != nil {
			t.Fatal(err)
		}
		if err := d.EndTemplate(blk.name); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	var all []ids.WorkerID
	var builtBefore uint64
	c.Controller.Do(func() {
		all = c.Controller.ActiveWorkers()
		builtBefore = c.Controller.Stats.TemplatesBuilt.Load()
	})

	failing.Store(true)
	var rerr error
	c.Controller.Do(func() { rerr = c.Controller.SetActive(all[:2]) })
	if rerr == nil || !strings.Contains(rerr.Error(), "injected") {
		t.Fatalf("SetActive error = %v, want injected failure", rerr)
	}

	var active []ids.WorkerID
	var builtAfter uint64
	c.Controller.Do(func() {
		active = c.Controller.ActiveWorkers()
		builtAfter = c.Controller.Stats.TemplatesBuilt.Load()
	})
	if len(active) != len(all) {
		t.Fatalf("failed SetActive changed active set: %v -> %v", all, active)
	}
	if builtAfter != builtBefore {
		t.Fatalf("failed SetActive built templates: %d -> %d", builtBefore, builtAfter)
	}

	// Both templates still run correctly under the untouched placement.
	if err := d.Instantiate("A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Instantiate("B"); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil || len(got) != 1 || got[0] != parts {
		t.Fatalf("sum after failed SetActive = %v (err %v), want [%d]", got, err, parts)
	}

	// Clearing the fault, the same SetActive commits and the job keeps
	// producing correct results on the shrunk set.
	failing.Store(false)
	c.Controller.Do(func() { rerr = c.Controller.SetActive(all[:2]) })
	if rerr != nil {
		t.Fatalf("SetActive after clearing fault: %v", rerr)
	}
	if err := d.Instantiate("A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Instantiate("B"); err != nil {
		t.Fatal(err)
	}
	got, err = d.GetFloats(sum, 0)
	if err != nil || len(got) != 1 || got[0] != parts {
		t.Fatalf("sum after committed SetActive = %v (err %v), want [%d]", got, err, parts)
	}
}

// TestBuildRetryOnPlacementChange: a SetActive racing an in-flight build
// stales its snapshot; the commit must discard the result and rebuild
// under the new placement (revalidate-and-retry), never install a template
// built for a dead placement.
func TestBuildRetryOnPlacementChange(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var stalls atomic.Int32
	hooks := controller.Hooks{OnBuildStart: func(name string) {
		if stalls.Add(1) == 1 {
			close(entered)
			<-release
		}
	}}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	c := startTestCluster(t, Options{Workers: 4, Hooks: hooks})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("build never started")
	}

	// Shrink the worker set while the build is stalled.
	var all []ids.WorkerID
	var rerr error
	c.Controller.Do(func() {
		all = c.Controller.ActiveWorkers()
		rerr = c.Controller.SetActive(all[:2])
	})
	if rerr != nil {
		t.Fatalf("SetActive during build: %v", rerr)
	}
	close(release)

	// The queued-free instantiation path: instantiate after the retry
	// commits and verify results under the new placement.
	for i := 0; i < 2; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil || len(got) != 1 || got[0] != 8*parts {
		t.Fatalf("sum = %v (err %v), want [%d]", got, err, 8*parts)
	}
	if retries := c.Controller.Stats.BuildRetries.Load(); retries == 0 {
		t.Error("expected the stalled build to be discarded and retried")
	}
}

// TestMigrateAtomicOnFailure: a failed rebuild during Migrate must leave
// placement and templates fully unchanged (the rebuilds run against a
// prospective placement snapshot; the move commits only after every
// template built).
func TestMigrateAtomicOnFailure(t *testing.T) {
	var failing atomic.Bool
	hooks := controller.Hooks{RetargetError: func(name string) error {
		if failing.Load() {
			return errors.New("injected migrate failure")
		}
		return nil
	}}
	c := startTestCluster(t, Options{Workers: 4, Hooks: hooks})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}

	var w1 ids.WorkerID
	var migErr error
	failing.Store(true)
	c.Controller.Do(func() {
		w1 = c.Controller.ActiveWorkers()[0]
		migErr = c.Controller.Migrate([]ids.VariableID{x.ID}, []int{1}, w1)
	})
	if migErr == nil || !strings.Contains(migErr.Error(), "injected") {
		t.Fatalf("Migrate error = %v, want injected failure", migErr)
	}
	// Nothing moved: the next instantiations need no edits and produce
	// the untouched-placement results.
	var edits uint64
	c.Controller.Do(func() { edits = c.Controller.Stats.EditsSent.Load() })
	if edits != 0 {
		t.Fatalf("failed Migrate staged %d edits, want 0", edits)
	}
	if err := d.Instantiate("blk"); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil || len(got) != 1 || got[0] != 4*parts {
		t.Fatalf("sum after failed Migrate = %v (err %v), want [%d]", got, err, 4*parts)
	}

	// Clearing the fault, the same Migrate commits and edits flow.
	failing.Store(false)
	c.Controller.Do(func() {
		migErr = c.Controller.Migrate([]ids.VariableID{x.ID}, []int{1}, w1)
	})
	if migErr != nil {
		t.Fatalf("Migrate after clearing fault: %v", migErr)
	}
	want := float64(4 * parts)
	for i := 0; i < 2; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatal(err)
		}
		want *= 2
		got, err = d.GetFloats(sum, 0)
		if err != nil || len(got) != 1 || got[0] != want {
			t.Fatalf("post-migration iteration %d: sum = %v (err %v), want [%v]", i, got, err, want)
		}
	}
	c.Controller.Do(func() { edits = c.Controller.Stats.EditsSent.Load() })
	if edits == 0 {
		t.Error("committed Migrate sent no edits")
	}
}
