package cluster

import (
	"testing"
	"time"

	"nimbus/internal/controller"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// Test functions: double every element of the input partition, and sum
// grouped partitions into a scalar.
const (
	fnDouble ids.FunctionID = fn.FirstAppFunc + iota
	fnSumAll
)

func testRegistry(t testing.TB) *fn.Registry {
	t.Helper()
	reg := fn.NewRegistry()
	reg.MustRegister(fnDouble, "test/double", func(c *fn.Ctx) error {
		in := params.NewDecoder(params.Blob(c.Read(0))).Floats()
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = 2 * v
		}
		c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
		return nil
	})
	reg.MustRegister(fnSumAll, "test/sum-all", func(c *fn.Ctx) error {
		sum := 0.0
		for i := 0; i < c.NumReads(); i++ {
			for _, v := range params.NewDecoder(params.Blob(c.Read(i))).Floats() {
				sum += v
			}
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{sum}).Blob())
		return nil
	})
	return reg
}

func startTestCluster(t testing.TB, opts Options) *Cluster {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = testRegistry(t)
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := Start(opts)
	if err != nil {
		t.Fatalf("starting cluster: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestPutComputeGet(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 4})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	y := d.MustVar("y", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p), float64(p)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), y.Write()); err != nil {
		t.Fatalf("submit double: %v", err)
	}
	if err := d.Submit(fnSumAll, 1, nil, y.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatalf("submit sum: %v", err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	// sum over p of 2*(p+p) = 4 * (0+1+...+7) = 112.
	if len(got) != 1 || got[0] != 112 {
		t.Fatalf("sum = %v, want [112]", got)
	}
}

func TestTemplateInstantiation(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 4})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 8
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	// Record the basic block: double x in place, reduce into sum.
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatalf("begin template: %v", err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatalf("end template: %v", err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get after recording: %v", err)
	}
	if len(got) != 1 || got[0] != 2*parts {
		t.Fatalf("after recording sum = %v, want [%d]", got, 2*parts)
	}

	// Each instantiation doubles again: 4x, 8x, 16x.
	want := float64(2 * parts)
	for i := 0; i < 3; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatalf("instantiate %d: %v", i, err)
		}
		want *= 2
		got, err := d.GetFloats(sum, 0)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("instantiation %d: sum = %v, want [%v]", i, got, want)
		}
	}

	var auto, installs uint64
	c.Controller.Do(func() {
		auto = c.Controller.Stats.AutoValidations.Load()
		installs = c.Controller.Stats.TemplatesBuilt.Load()
	})
	if installs != 1 {
		t.Errorf("templates built = %d, want 1", installs)
	}
	if auto == 0 {
		t.Errorf("expected auto-validations on repeated instantiation, got 0")
	}

	// The workers must have served the repeated instantiations from the
	// compiled fast path: commands materialized through compiled arenas,
	// one compilation per install (never per instance), and pooled arenas
	// after the first instance.
	var cmds, compiles, reused, insts uint64
	for _, w := range c.Workers {
		cmds += w.Stats.InstantiateCmds.Load()
		compiles += w.Stats.TemplateCompiles.Load()
		reused += w.Stats.UnitsReused.Load()
		insts += w.Stats.Instantiations.Load()
	}
	if cmds == 0 {
		t.Errorf("no commands materialized through the compiled path")
	}
	if compiles > uint64(len(c.Workers)) {
		t.Errorf("templates recompiled per instantiation: %d compiles for %d workers", compiles, len(c.Workers))
	}
	if insts > uint64(len(c.Workers)) && reused == 0 {
		t.Errorf("no arena reuse across %d instantiations", insts)
	}
}

func TestCentralMode(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 3, Mode: controller.ModeCentral})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	const parts = 6
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{3}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(got) != 1 || got[0] != 36 {
		t.Fatalf("sum = %v, want [36]", got)
	}
}

func TestLatencyTransportStillCorrect(t *testing.T) {
	c := startTestCluster(t, Options{Workers: 3, Latency: 200 * time.Microsecond})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	defer d.Close()

	x := d.MustVar("x", 3)
	sum := d.MustVar("sum", 1)
	for p := 0; p < 3; p++ {
		if err := d.PutFloats(x, p, []float64{1, 2}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Submit(fnSumAll, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("sum = %v, want [9]", got)
	}
}
