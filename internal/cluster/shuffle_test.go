package cluster

import (
	"bytes"
	"hash/fnv"
	"testing"

	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// fnHashAll digests every grouped input partition with FNV-1a and writes
// the sum of the 32-bit digests (exact in a float64), so the test can
// verify every byte of every partition survived the shuffle bit-identical
// without hauling the partitions back through the driver.
const fnHashAll ids.FunctionID = fn.FirstAppFunc + 100

// TestShuffleLargePartitionsSpill is the data-plane acceptance test: a
// grouped stage pulls 1 MiB partitions — an order of magnitude larger
// than any other test object — across workers whose receive budget is a
// fraction of one partition. The transfers must stream chunked under
// credit flow control, spill to disk at the receiver, and reassemble
// bit-identically.
func TestShuffleLargePartitionsSpill(t *testing.T) {
	reg := testRegistry(t)
	reg.MustRegister(fnHashAll, "test/fnv-all", func(c *fn.Ctx) error {
		sum := 0.0
		for i := 0; i < c.NumReads(); i++ {
			h := fnv.New32a()
			h.Write(c.Read(i))
			sum += float64(h.Sum32())
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{sum}).Blob())
		return nil
	})
	c := startTestCluster(t, Options{
		Workers:  2,
		Registry: reg,
		// 64 KiB chunks, and a receive budget a fraction of one partition:
		// every cross-worker transfer must spill at the receiver.
		ChunkSize:      64 << 10,
		RecvBudget:     128 << 10,
		CompressChunks: true,
	})
	d, err := c.Driver("test")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const parts = 4
	const partBytes = 1 << 20
	x := d.MustVar("x", parts)
	h := d.MustVar("h", 1)
	want := 0.0
	partData := make([][]byte, parts)
	for p := 0; p < parts; p++ {
		data := make([]byte, partBytes)
		for i := range data {
			data[i] = byte((i*2654435761 + p*97) >> 7)
		}
		partData[p] = data
		hs := fnv.New32a()
		hs.Write(data)
		want += float64(hs.Sum32())
		if err := d.Put(x, p, data); err != nil {
			t.Fatalf("put partition %d: %v", p, err)
		}
	}

	// One grouped task reads all partitions: whichever worker runs it must
	// shuffle every remote partition over the streaming data plane.
	if err := d.Submit(fnHashAll, 1, nil, x.ReadGrouped(), h.WriteShared()); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFloats(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("digest sum = %v, want [%v]: shuffled partitions corrupted", got, want)
	}

	// The transfers were chunked and the bounded receiver spilled.
	var chunksSent, chunksRecv, xfersRecv, spills, spilledBytes uint64
	for _, w := range c.Workers {
		chunksSent += w.Stats.ChunksSent.Load()
		chunksRecv += w.Stats.ChunksRecv.Load()
		xfersRecv += w.Stats.XfersRecv.Load()
		spills += w.Stats.Spills.Load()
		spilledBytes += w.Stats.SpilledBytes.Load()
	}
	if xfersRecv == 0 || chunksRecv == 0 {
		t.Fatalf("no chunked transfers crossed workers (xfers=%d chunks=%d) — partitions rode some other path", xfersRecv, chunksRecv)
	}
	if chunksSent < xfersRecv*2 {
		t.Errorf("ChunksSent = %d for %d transfers: 1 MiB partitions were not split into 64 KiB chunks", chunksSent, xfersRecv)
	}
	if spills == 0 {
		t.Errorf("receive budget of 128 KiB never spilled a 1 MiB transfer (SpilledBytes=%d)", spilledBytes)
	}

	// Fetching a partition back also rides the chunked path (worker →
	// controller → driver) and must round-trip bit-identically.
	back, err := d.Get(x, parts-1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, partData[parts-1]) {
		t.Fatalf("fetched partition differs from what was put (%d vs %d bytes)", len(back), len(partData[parts-1]))
	}
}
