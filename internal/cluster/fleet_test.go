package cluster

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/cluster/leakcheck"
	"nimbus/internal/controller"
	"nimbus/internal/driver"
	"nimbus/internal/fleet"
	"nimbus/internal/proto"
)

// These tests exercise the elastic-fleet lifecycle end to end: warm-gated
// joins, graceful drains under live loops, autoscaling, the mid-warm
// failure path, and drain-abort across controller failover. They are the
// fleet smoke CI runs under -race (-run 'Fleet|Join|Drain|Autoscale').

// awaitFleet polls the controller's fleet stats until ok returns true.
func awaitFleet(t *testing.T, c *Cluster, what string, ok func(controller.FleetStats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok(c.Controller.FleetStats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %s: %+v", what, c.Controller.FleetStats())
}

// TestFleetJoinWarmBeforeTraffic grows the fleet in the middle of an
// iterative job and checks the two join invariants: the joiner compiled
// every active template before its first activation (warm gating), and
// the final centroids are bit-identical to an undisturbed run (the grow
// retarget changed placement, never results).
func TestFleetJoinWarmBeforeTraffic(t *testing.T) {
	leakcheck.Check(t)
	const iters = 8

	refReg := testRegistry(t)
	kmeans.Register(refReg)
	ref := startTestCluster(t, Options{Workers: 2, Slots: 2, Registry: refReg})
	refCents, refD, err := runKmeansExplicit(ref, iters)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refD.Close()

	reg := testRegistry(t)
	kmeans.Register(reg)
	c := startTestCluster(t, Options{Workers: 2, Slots: 2, Registry: reg})
	d, err := c.Driver("kmeans-join")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeansFailoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Iterate(); err != nil {
			t.Fatalf("iterate %d: %v", i, err)
		}
		if _, err := j.ShiftValue(); err != nil {
			t.Fatal(err)
		}
	}

	w, err := c.JoinWorker()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	select {
	case <-w.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("joined worker never became ready")
	}
	// Warm gating: ready means every active template is compiled on the
	// joiner, and nothing has been scheduled to it yet.
	if got := w.Stats.TemplateCompiles.Load(); got == 0 {
		t.Fatal("joiner ready with no templates compiled; warm did not run")
	}
	if got := w.Stats.Activations.Load(); got != 0 {
		t.Fatalf("joiner saw %d activations before ready; traffic leaked into warm", got)
	}
	st := c.Controller.FleetStats()
	if st.Workers != 3 || st.Joins != 1 || st.Warming != 0 {
		t.Fatalf("fleet stats after join: %+v", st)
	}
	if st.WarmP50 <= 0 {
		t.Fatalf("warm latency not recorded: %+v", st)
	}

	for i := 3; i < iters; i++ {
		if err := j.Iterate(); err != nil {
			t.Fatalf("iterate %d: %v", i, err)
		}
		if _, err := j.ShiftValue(); err != nil {
			t.Fatal(err)
		}
	}
	cents, err := d.Get(j.Centroids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cents, refCents) {
		t.Fatal("centroids after mid-run join differ from undisturbed run")
	}
	if w.Stats.Activations.Load() == 0 {
		t.Fatal("joiner took no work after becoming ready")
	}
	if rec := c.Controller.Stats.Recoveries.Load(); rec != 0 {
		t.Fatalf("join triggered %d recoveries; grow must not be a failure", rec)
	}
}

// TestFleetDrainDuringConcurrentLoops drains a worker while two jobs are
// both mid-InstantiateWhile. Both loops must converge bit-identically to
// an undisturbed run with zero failed commands: a drain is a planned
// migration (retarget + eager flush), never a recovery.
func TestFleetDrainDuringConcurrentLoops(t *testing.T) {
	leakcheck.Check(t)
	const iters = 10

	refReg := testRegistry(t)
	kmeans.Register(refReg)
	ref := startTestCluster(t, Options{Workers: 3, Slots: 2, Registry: refReg})
	refD, err := ref.Driver("ref")
	if err != nil {
		t.Fatal(err)
	}
	refJ, err := kmeans.Setup(refD, kmeansFailoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := refJ.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	if _, err := refD.InstantiateWhile(kmeans.IterateBlock, refJ.Shift.AtLeast(0, 0), iters); err != nil {
		t.Fatal(err)
	}
	refCents, err := refD.Get(refJ.Centroids, 0)
	if err != nil {
		t.Fatal(err)
	}
	refD.Close()

	reg := testRegistry(t)
	kmeans.Register(reg)
	c := startTestCluster(t, Options{Workers: 3, Slots: 2, Registry: reg})

	type loopJob struct {
		d   *driver.Driver
		j   *kmeans.Job
		fut *driver.Future[driver.LoopResult]
	}
	jobs := make([]loopJob, 2)
	for i := range jobs {
		d, err := c.Driver("drain-loop")
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		j, err := kmeans.Setup(d, kmeansFailoverCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := j.InstallTemplate(); err != nil {
			t.Fatal(err)
		}
		jobs[i] = loopJob{d: d, j: j}
	}
	evals0 := c.Controller.Stats.PredicateEvals.Load()
	for i := range jobs {
		jobs[i].fut = jobs[i].d.InstantiateWhileAsync(
			kmeans.IterateBlock, jobs[i].j.Shift.AtLeast(0, 0), iters)
	}
	// Wait until both loops are demonstrably mid-flight (at least one
	// predicate evaluation each), then drain a worker under them.
	deadline := time.Now().Add(10 * time.Second)
	for c.Controller.Stats.PredicateEvals.Load()-evals0 < 2 {
		if time.Now().After(deadline) {
			t.Fatal("loops never started iterating")
		}
		time.Sleep(time.Millisecond)
	}
	var drainErr error
	ctrl := c.Controller
	ctrl.Do(func() {
		ws := ctrl.ActiveWorkers()
		drainErr = ctrl.DrainWorker(ws[len(ws)-1])
	})
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}

	for i := range jobs {
		res, err := jobs[i].fut.Wait()
		if err != nil {
			t.Fatalf("loop %d: %v", i, err)
		}
		if res.Iters != iters {
			t.Fatalf("loop %d ran %d iterations, want %d", i, res.Iters, iters)
		}
		cents, err := jobs[i].d.Get(jobs[i].j.Centroids, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cents, refCents) {
			t.Fatalf("job %d centroids differ from undisturbed run after drain", i)
		}
	}
	awaitFleet(t, c, "drain completion", func(st controller.FleetStats) bool {
		return st.Drains == 1 && st.Draining == 0 && st.Workers == 2
	})
	if rec := c.Controller.Stats.Recoveries.Load(); rec != 0 {
		t.Fatalf("drain triggered %d recoveries; want zero failed commands", rec)
	}
	st := c.Controller.FleetStats()
	if st.RebalanceP50 <= 0 {
		t.Fatalf("rebalance latency not recorded: %+v", st)
	}
}

// TestFleetChaosKillMidWarmLeavesNoState kills a joining worker in the
// middle of its warm round — the controller is held mid-plan by the
// retarget hook while the "machine" dies — and checks the failure
// contract: the victim never receives traffic (it never even receives the
// admit), and no controller state survives it: no warming entry, no join
// counted, no recovery run, and the fleet keeps working.
func TestFleetChaosKillMidWarmLeavesNoState(t *testing.T) {
	leakcheck.Check(t)
	var armed atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	reg := testRegistry(t)
	kmeans.Register(reg)
	c := startTestCluster(t, Options{
		Workers: 2, Slots: 2, Registry: reg,
		// The chaos transport (deterministic, seeded) carries every wire;
		// the kill below is the scripted fault.
		ChaosSeed: 0xfee7,
		Hooks: controller.Hooks{
			RetargetError: func(string) error {
				if armed.Load() {
					select {
					case entered <- struct{}{}:
					default:
					}
					<-release
				}
				return nil
			},
		},
	})
	d, err := c.Driver("chaos-warm")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeansFailoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		t.Fatal(err)
	}
	if err := j.Iterate(); err != nil {
		t.Fatal(err)
	}
	// The shift read is synchronous: once it returns, the template's
	// off-loop build has committed and the warm plan below must rebuild it
	// (and hit the armed hook) rather than skip an in-flight build.
	if _, err := j.ShiftValue(); err != nil {
		t.Fatal(err)
	}

	// Play the doomed worker on a raw connection: announce, then die
	// mid-warm while the controller is stalled planning our templates.
	armed.Store(true)
	conn, err := c.Transport.Dial(ControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(proto.Marshal(&proto.FleetAnnounce{DataAddr: "nimbus/data/99", Slots: 2})); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		raw, err := conn.Recv()
		if err == nil {
			got <- raw
		}
		close(got)
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("warm plan never reached the retarget hook")
	}
	conn.Close() // the machine dies mid-warm
	armed.Store(false)
	close(release)

	if raw, ok := <-got; ok {
		t.Fatalf("dead joiner received a %d-byte frame; mid-warm death must deliver nothing", len(raw))
	}
	awaitFleet(t, c, "warm abort cleanup", func(st controller.FleetStats) bool {
		return st.Warming == 0
	})
	st := c.Controller.FleetStats()
	if st.Workers != 2 || st.Joins != 0 {
		t.Fatalf("fleet stats after mid-warm death: %+v", st)
	}
	if rec := c.Controller.Stats.Recoveries.Load(); rec != 0 {
		t.Fatalf("mid-warm death ran %d recoveries; a warming worker owns nothing to recover", rec)
	}
	// The fleet is unharmed: the job keeps iterating normally.
	if err := j.Iterate(); err != nil {
		t.Fatalf("iterate after aborted join: %v", err)
	}
	if _, err := d.Get(j.Centroids, 0); err != nil {
		t.Fatal(err)
	}
}

// TestAutoscaleClusterGrowsUnderLoad wires the autoscaler to a live
// cluster: queue depth from heartbeats drives TargetPending, Launch joins
// real workers through the warm protocol, and once the burst drains the
// fleet scales back to Min via graceful drains. Results stay correct
// throughout and nothing fails over.
func TestAutoscaleClusterGrowsUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	const parts = 24
	c := startTestCluster(t, Options{
		Workers: 2, Slots: 2, Registry: slowRegistry(t),
		HeartbeatEvery: 2 * time.Millisecond,
	})
	a := c.Autoscaler(fleet.Config{
		Min: 2, Max: 6,
		Policy: fleet.TargetPending{PerWorker: 2},
	})

	d, err := c.Driver("autoscale")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Submit(fnSlowDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}

	// Drive the autoscaler deterministically while the burst is queued:
	// heartbeats report pending depth, the policy demands more workers.
	now := time.Unix(0, 0)
	deadline := time.Now().Add(15 * time.Second)
	grew := false
	for time.Now().Before(deadline) {
		a.Step(now)
		now = now.Add(time.Second) // out-wait any cooldown between steps
		if c.FleetSample().Workers >= 4 {
			grew = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !grew {
		t.Fatalf("autoscaler never grew the fleet: %+v", c.FleetSample())
	}

	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		got, err := d.GetFloats(x, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != float64(2*(p+1)) {
			t.Fatalf("x[%d] = %v, want [%d]", p, got, 2*(p+1))
		}
	}

	// Burst over: pending returns to zero, the policy wants Min again and
	// the autoscaler drains the extras gracefully.
	shrunk := false
	for time.Now().Before(deadline) {
		a.Step(now)
		now = now.Add(time.Second)
		if s := c.FleetSample(); s.Workers == 2 && s.Draining == 0 && s.Warming == 0 {
			shrunk = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !shrunk {
		t.Fatalf("autoscaler never shrank the fleet: %+v", c.FleetSample())
	}
	st := a.Stats()
	if st.Ups == 0 || st.Downs == 0 {
		t.Fatalf("autoscaler stats: %+v", st)
	}
	if rec := c.Controller.Stats.Recoveries.Load(); rec != 0 {
		t.Fatalf("autoscaling ran %d recoveries; scaling must never look like failure", rec)
	}
	// Values survive the scale-down: every partition still reads back.
	for p := 0; p < parts; p++ {
		if _, err := d.GetFloats(x, p); err != nil {
			t.Fatalf("get after scale-down: %v", err)
		}
	}
}

// TestFleetDrainAbortedByFailover kills the controller while a drain is
// still waiting for the victim's in-flight work. Fleet phases are
// deliberately not replicated: the promoted standby readmits the victim
// as a plain active worker (the documented drain-abort), the worker
// clears its drain flag on reconnect, and the job finishes correctly on
// the full fleet.
func TestFleetDrainAbortedByFailover(t *testing.T) {
	leakcheck.Check(t)
	const parts = 8
	c := startTestCluster(t, Options{
		Workers: 3, Slots: 2, Registry: slowRegistry(t),
		LeaseTTL: 150 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby: %v", err)
	}
	d, err := c.Driver("drain-abort")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.MustVar("x", parts)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Slow work keeps the victim busy, so the drain cannot quiesce before
	// the controller dies. Submit is pipelined — wait until the stage is
	// demonstrably executing before draining under it.
	if err := d.Submit(fnSlowDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	busyDeadline := time.Now().Add(10 * time.Second)
	for totalActivations(c) == 0 {
		if time.Now().After(busyDeadline) {
			t.Fatal("stage never started executing")
		}
		time.Sleep(time.Millisecond)
	}
	var drainErr error
	ctrl := c.Controller
	ctrl.Do(func() {
		ws := ctrl.ActiveWorkers()
		drainErr = ctrl.DrainWorker(ws[len(ws)-1])
	})
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}
	if st := c.Controller.FleetStats(); st.Draining != 1 {
		t.Fatalf("drain did not stay in flight: %+v", st)
	}

	c.KillController()
	if _, err := c.AwaitPromotion(10 * time.Second); err != nil {
		t.Fatalf("promotion: %v", err)
	}
	// The full fleet reassembles under the new controller: all three
	// workers reconnect as active, nobody is draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.Controller.FleetStats()
		if st.Workers == 3 && st.Draining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reassembled after failover: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, w := range c.Workers {
		if w.Draining() {
			t.Fatal("worker still flagged draining after failover readmission")
		}
	}
	// The job completes correctly on the restored fleet.
	if err := d.Barrier(); err != nil {
		t.Fatalf("barrier after failover: %v", err)
	}
	for p := 0; p < parts; p++ {
		got, err := d.GetFloats(x, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != float64(2*(p+1)) {
			t.Fatalf("x[%d] = %v, want [%d]", p, got, 2*(p+1))
		}
	}
}

// TestFleetStandbyChainRejected: attaching a standby while another is
// attached and unpromoted is a typed error — replication is strictly
// primary→standby, a chained standby would protect nothing (see
// DESIGN.md). After a promotion the next attach is legal again.
func TestFleetStandbyChainRejected(t *testing.T) {
	leakcheck.Check(t)
	c := startTestCluster(t, Options{
		Workers: 2, LeaseTTL: 150 * time.Millisecond,
	})
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("first standby: %v", err)
	}
	if _, err := c.StartStandby(); !errors.Is(err, controller.ErrStandbyChain) {
		t.Fatalf("second standby err = %v, want ErrStandbyChain", err)
	}
	c.KillController()
	if _, err := c.AwaitPromotion(10 * time.Second); err != nil {
		t.Fatalf("promotion: %v", err)
	}
	// The promoted primary may take a fresh standby.
	if _, err := c.StartStandby(); err != nil {
		t.Fatalf("standby after promotion: %v", err)
	}
}
