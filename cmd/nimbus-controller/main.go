// Command nimbus-controller runs a standalone Nimbus controller over TCP.
// Workers (cmd/nimbus-worker) and driver programs connect to its address.
//
//	nimbus-controller -listen :7000
//	nimbus-controller -listen :7000 -mode central -central-cost 166us
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nimbus/internal/controller"
	"nimbus/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7000", "control-plane listen address")
	mode := flag.String("mode", "nimbus", "scheduling mode: nimbus or central")
	centralCost := flag.Duration("central-cost", 0,
		"modeled per-task scheduling cost in central mode (e.g. 166us)")
	hbTimeout := flag.Duration("heartbeat-timeout", 5*time.Second,
		"mark a worker failed after this silence (0 disables)")
	flag.Parse()

	var m controller.Mode
	switch *mode {
	case "nimbus":
		m = controller.ModeNimbus
	case "central":
		m = controller.ModeCentral
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	c := controller.New(controller.Config{
		ControlAddr:        *listen,
		Transport:          transport.TCP{},
		Mode:               m,
		CentralPerTaskCost: *centralCost,
		HeartbeatTimeout:   *hbTimeout,
		Logf:               log.Printf,
	})
	if err := c.Start(); err != nil {
		log.Fatalf("starting controller: %v", err)
	}
	log.Printf("nimbus controller listening on %s (%s mode)", *listen, *mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	c.Stop()
}
