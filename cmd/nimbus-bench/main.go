// Command nimbus-bench regenerates the paper's evaluation tables and
// figures (§5). By default it runs every experiment at quick scale; use
// -scale paper for the full 100-worker, 8000-task configuration and -exp
// to select one experiment.
//
//	nimbus-bench -exp fig7
//	nimbus-bench -scale paper -exp table2
//	nimbus-bench -list
//
// With -json, the selected tables plus a fixed set of hot-path
// micro-benchmarks (ns/op, allocs/op) are also written to the given file
// as a machine-readable report — the committed BENCH_<n>.json files:
//
//	nimbus-bench -exp table2 -json BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nimbus/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(bench.Scale) (*bench.Table, error)
}{
	{"fig1", "Spark-like control plane bottleneck (LR, worker sweep)", bench.Fig1},
	{"table1", "Template installation per-task costs", bench.Table1},
	{"table2", "Template instantiation per-task costs", bench.Table2},
	{"table3", "Edit costs vs full installs vs static-dataflow reinstall", bench.Table3},
	{"fig7", "LR & k-means iteration time across systems", bench.Fig7},
	{"fig8", "Task throughput: Nimbus vs central baseline", bench.Fig8},
	{"fig9", "Dynamic adaptation timeline", bench.Fig9},
	{"fig10", "Migration every 5 iterations: edits vs reinstall", bench.Fig10},
	{"fig11", "Water simulation: MPI vs Nimbus vs Nimbus w/o templates", bench.Fig11},
	{"shuffle", "Streaming data plane: shuffle goodput, flow control, spill", bench.Shuffle},
	{"frontdoor", "Driver front door: session mux, admission latency, fair share", bench.FrontDoor},
	{"fleet", "Elastic fleet: warm-gated joins, graceful drains, autoscale sim", bench.Fleet},
}

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or paper")
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	jsonPath := flag.String("json", "", "write tables + micro-benchmarks (ns/op, allocs/op) to this JSON file")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}
	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.Quick()
	case "paper":
		scale = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleName)
		os.Exit(2)
	}

	var tables []*bench.Table
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		fmt.Printf("running %s (%s scale)...\n", e.name, scale.Name)
		start := time.Now()
		t, err := e.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("%s(completed in %v)\n\n", t.Format(), time.Since(start).Round(time.Millisecond))
		tables = append(tables, t)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		fmt.Printf("running micro-benchmarks...\n")
		micro := bench.Micro()
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, scale.Name, tables, micro); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
