// Command nimbus-worker runs a standalone Nimbus worker over TCP.
//
//	nimbus-worker -controller host:7000 -data :7101 -slots 8
//
// The worker registers the built-in functions plus the bundled
// applications (lr, kmeans, water), so driver programs built from this
// repository can run against it directly. With -fleet the worker joins
// elastically: it is warmed (every live job's active templates installed
// and compiled) before it takes traffic, and a controller-initiated
// drain lets it retire without failing a command (DESIGN.md "Elastic
// fleet").
package main

import (
	"flag"
	"log"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/app/lr"
	"nimbus/internal/app/water"
	"nimbus/internal/durable"
	"nimbus/internal/fn"
	"nimbus/internal/transport"
	"nimbus/internal/worker"
)

func main() {
	ctrl := flag.String("controller", "localhost:7000", "controller address")
	data := flag.String("data", ":7100", "data-plane listen address (must be reachable by peers)")
	slots := flag.Int("slots", 8, "executor slots")
	ckptDir := flag.String("checkpoint-dir", "nimbus-checkpoints", "durable storage directory")
	hb := flag.Duration("heartbeat", time.Second, "heartbeat period")
	fleetJoin := flag.Bool("fleet", false, "join elastically: warm before taking traffic, drainable")
	flag.Parse()

	reg := fn.NewRegistry()
	lr.Register(reg)
	kmeans.Register(reg)
	water.Register(reg)

	w := worker.New(worker.Config{
		ControlAddr:    *ctrl,
		DataAddr:       *data,
		Transport:      transport.TCP{},
		Slots:          *slots,
		Registry:       reg,
		Durable:        durable.NewFS(*ckptDir),
		HeartbeatEvery: *hb,
		FleetJoin:      *fleetJoin,
		Logf:           log.Printf,
	})
	if err := w.Start(); err != nil {
		log.Fatalf("starting worker: %v", err)
	}
	if *fleetJoin {
		log.Printf("nimbus worker %s admitted by %s (data plane %s, %d slots); warming...",
			w.ID(), *ctrl, *data, *slots)
		<-w.Ready()
		log.Printf("nimbus worker %s warmed and active", w.ID())
	} else {
		log.Printf("nimbus worker %s registered with %s (data plane %s, %d slots)",
			w.ID(), *ctrl, *data, *slots)
	}
	if err := w.Wait(); err != nil {
		log.Printf("worker stopped: %v", err)
	}
}
