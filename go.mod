module nimbus

go 1.21
