// Water simulation: the paper's complex application (§5.5) — a
// particle-levelset fluid proxy with a triply nested, data-dependent loop
// (frames → CFL substeps → iterative redistancing and projection), 23
// computational stages and 31 variables, running entirely on execution
// templates.
//
//	go run ./examples/watersim
package main

import (
	"fmt"
	"log"

	"nimbus/internal/app/water"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func main() {
	reg := fn.NewRegistry()
	water.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	d, err := c.Driver("watersim")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	job, err := water.Setup(d, water.Config{Rows: 48, Cols: 24, Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.InstallTemplates(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("pouring water (5 basic blocks, data-dependent nesting)")
	for frame := 1; frame <= 3; frame++ {
		fs, err := job.RunFrame(frame)
		if err != nil {
			log.Fatal(err)
		}
		mass, _ := d.GetFloats(job.MassSum, 0)
		energy, _ := d.GetFloats(job.EnergySum, 0)
		fmt.Printf("  frame %d: %d substeps, %d reinit iters, %d jacobi iters, t=%.3f, mass=%.0f cells, energy=%.2f\n",
			frame, fs.Substeps, fs.ReinitIters, fs.JacobiIters, fs.EndTime, mass[0], energy[0])
	}

	var inst, patches uint64
	c.Controller.Do(func() {
		inst = c.Controller.Stats.Instantiations.Load()
		patches = c.Controller.Stats.PatchCacheHits.Load()
	})
	fmt.Printf("control plane: %d template instantiations, %d patch-cache hits\n", inst, patches)
}
