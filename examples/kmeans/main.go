// K-means clustering with a data-dependent convergence loop: the
// iteration block is one execution template instantiated until the
// centroid movement falls below a threshold.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func main() {
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	d, err := c.Driver("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	job, err := kmeans.Setup(d, kmeans.Config{
		Partitions: 8, K: 3, Dims: 2, PointsPerPart: 250, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.InstallTemplate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("clustering until the centroids stop moving")
	for i := 1; i <= 50; i++ {
		if err := job.Iterate(); err != nil {
			log.Fatal(err)
		}
		shift, err := job.ShiftValue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iteration %2d: centroid shift %.5f\n", i, shift)
		if shift < 1e-3 {
			break
		}
	}
	cents, err := job.CentroidValues()
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k+1 < len(cents); k += 2 {
		fmt.Printf("centroid %d: (%.2f, %.2f)\n", k/2, cents[k], cents[k+1])
	}
}
