// Controller failover walkthrough: run k-means with a hot-standby
// controller attached, kill the primary mid-run, and let the standby take
// the cluster over — the job finishes with the same centroids an
// uninterrupted run produces, the driver reattaches transparently, and
// the workers keep executing through the outage.
//
//	go run ./examples/failover
//
// See examples/README.md for a step-by-step narration and DESIGN.md
// ("Controller failover") for the protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func main() {
	reg := fn.NewRegistry()
	kmeans.Register(reg)

	// A short lease makes the demo snappy; production would keep the
	// one-second default. The standby attaches to the running primary,
	// receives a full snapshot, and tails every logged driver op from
	// then on.
	c, err := cluster.Start(cluster.Options{
		Workers: 4, Registry: reg, LeaseTTL: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.StartStandby(); err != nil {
		log.Fatal(err)
	}

	d, err := c.Driver("failover-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	job, err := kmeans.Setup(d, kmeans.Config{
		Partitions: 8, K: 3, Dims: 2, PointsPerPart: 250, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.InstallTemplate(); err != nil {
		log.Fatal(err)
	}

	const iters = 12
	const killAt = 5
	fmt.Printf("clustering for %d iterations; killing the primary after iteration %d\n", iters, killAt)
	for i := 1; i <= iters; i++ {
		// Iterate is fire-and-forget: the instantiation is journaled
		// driver-side before it is sent, so even an op the dying primary
		// never logged is resent to the promoted controller.
		if err := job.Iterate(); err != nil {
			log.Fatal(err)
		}
		if i == killAt {
			fmt.Println("  >> killing the primary controller (no shutdown handshake)")
			c.KillController()
			// Nothing else to do: the standby's lease expires, it rebuilds
			// the control plane from its shadow and re-binds the listen
			// address; workers reconnect and replay buffered completions;
			// the driver's next blocked read reattaches and resends its
			// unapplied journal suffix.
		}
		shift, err := job.ShiftValue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iteration %2d: centroid shift %.5f\n", i, shift)
	}

	cents, err := job.CentroidValues()
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k+1 < len(cents); k += 2 {
		fmt.Printf("centroid %d: (%.2f, %.2f)\n", k/2, cents[k], cents[k+1])
	}

	// Adopt the promoted controller and show the failover ledger.
	promoted, err := c.AwaitPromotion(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfailover ledger:\n")
	fmt.Printf("  takeovers: %d, oplog ops replayed: %d\n",
		promoted.Stats.Takeovers.Load(), promoted.Stats.OpsReplayed.Load())
	fmt.Printf("  job applied ops %d == driver ops sent %d: %v\n",
		promoted.JobApplied(d.Job()), d.OpsSent(),
		promoted.JobApplied(d.Job()) == d.OpsSent())
	var outage, replayed, dropped, reconnects uint64
	for _, w := range c.Workers {
		outage += w.Stats.OutageDone.Load()
		replayed += w.Stats.ReplayedReports.Load()
		dropped += w.Stats.DroppedReports.Load()
		reconnects += w.Stats.Reconnects.Load()
	}
	fmt.Printf("  worker reconnects: %d, commands executed during outage: %d\n", reconnects, outage)
	fmt.Printf("  completion reports replayed: %d, dropped: %d\n", replayed, dropped)
}
