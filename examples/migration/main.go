// Live task migration: while an iterative job runs on templates, the
// cluster manager moves tasks between workers. Small moves are applied as
// template edits riding the next instantiation; shrinking or growing the
// worker set swaps whole worker-template sets, with patches moving the
// data (paper §2.3, Figures 9 and 10).
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"nimbus/internal/app/lr"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
)

func main() {
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	d, err := c.Driver("migration")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	job, err := lr.Setup(d, lr.Config{
		Partitions: 8, Simulated: true,
		TaskDuration: 2 * time.Millisecond, ReduceDuration: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.InstallTemplates(); err != nil {
		log.Fatal(err)
	}

	iterate := func(label string) {
		start := time.Now()
		if err := job.Optimize(); err != nil {
			log.Fatal(err)
		}
		if err := d.Barrier(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s %8.2fms\n", label, float64(time.Since(start).Microseconds())/1000)
	}

	fmt.Println("steady state:")
	for i := 0; i < 3; i++ {
		iterate(fmt.Sprintf("iteration %d", i+1))
	}

	// Migrate two partitions to worker 1 via template edits.
	var workers []ids.WorkerID
	c.Controller.Do(func() { workers = c.Controller.ActiveWorkers() })
	var migErr error
	c.Controller.Do(func() {
		migErr = c.Controller.Migrate(
			[]ids.VariableID{job.TData.ID, job.Grad.ID}, []int{1, 5}, workers[0])
	})
	if migErr != nil {
		log.Fatal(migErr)
	}
	fmt.Println("after migrating 2 partitions (edits ride the next instantiation):")
	for i := 0; i < 3; i++ {
		iterate(fmt.Sprintf("iteration %d", i+4))
	}

	// Revoke half the workers (new worker templates + data patches), then
	// restore them (cached templates revalidate).
	c.Controller.Do(func() { migErr = c.Controller.SetActive(workers[:2]) })
	if migErr != nil {
		log.Fatal(migErr)
	}
	fmt.Println("after shrinking to 2 workers:")
	for i := 0; i < 3; i++ {
		iterate(fmt.Sprintf("iteration %d", i+7))
	}
	c.Controller.Do(func() { migErr = c.Controller.SetActive(workers) })
	if migErr != nil {
		log.Fatal(migErr)
	}
	fmt.Println("after restoring 4 workers (cached templates revalidated):")
	for i := 0; i < 3; i++ {
		iterate(fmt.Sprintf("iteration %d", i+10))
	}

	var edits, builds, patches uint64
	c.Controller.Do(func() {
		edits = c.Controller.Stats.EditsSent.Load()
		builds = c.Controller.Stats.TemplatesBuilt.Load()
		patches = c.Controller.Stats.PatchesBuilt.Load()
	})
	fmt.Printf("control plane: %d edits sent, %d template builds, %d patches built\n",
		edits, builds, patches)
}
