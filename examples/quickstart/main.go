// Quickstart: start an in-process Nimbus cluster, run a parallel
// map+reduce job, record it into an execution template, and re-execute it
// with single-message instantiations — reading results back through the
// v2 async surface, so the instantiate/read pairs pipeline instead of
// paying one round trip each.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nimbus/internal/cluster"
	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

const (
	fnSquare ids.FunctionID = fn.FirstAppFunc + iota
	fnSum
)

func main() {
	// Register the application's task functions. Both the driver and the
	// workers resolve them by ID.
	reg := fn.NewRegistry()
	reg.MustRegister(fnSquare, "quickstart/square", func(c *fn.Ctx) error {
		in := params.NewDecoder(params.Blob(c.Read(0))).Floats()
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = v * v
		}
		c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
		return nil
	})
	reg.MustRegister(fnSum, "quickstart/sum", func(c *fn.Ctx) error {
		total := 0.0
		for i := 0; i < c.NumReads(); i++ {
			for _, v := range params.NewDecoder(params.Blob(c.Read(i))).Floats() {
				total += v
			}
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{total}).Blob())
		return nil
	})

	// One controller + four workers over the in-memory transport.
	c, err := cluster.Start(cluster.Options{Workers: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	d, err := c.Driver("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// A partitioned input, squared in place, reduced to a scalar.
	const parts = 8
	x := d.MustVar("x", parts)
	total := d.MustVar("total", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p), float64(p + 1)}); err != nil {
			log.Fatal(err)
		}
	}

	// Record the basic block while it executes the first time...
	if err := d.BeginTemplate("square-sum"); err != nil {
		log.Fatal(err)
	}
	if err := d.Submit(fnSquare, parts, nil, x.Read(), x.Write()); err != nil {
		log.Fatal(err)
	}
	if err := d.Submit(fnSum, 1, nil, x.ReadGrouped(), total.WriteShared()); err != nil {
		log.Fatal(err)
	}
	if err := d.EndTemplate("square-sum"); err != nil {
		log.Fatal(err)
	}
	v, err := d.GetFloats(total, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recording:      sum of squares = %.0f\n", v[0])

	// ...then re-execute it with one message per instantiation. Each round
	// squares the (already squared) values again.
	for i := 0; i < 3; i++ {
		if err := d.Instantiate("square-sum"); err != nil {
			log.Fatal(err)
		}
		v, err = d.GetFloats(total, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after instantiation %d: sum = %.6g\n", i+1, v[0])
	}

	// Finally, read every partition back through the async surface: all
	// eight reads go out before the first reply is consumed, so the
	// whole read-back costs one synchronization instead of eight
	// request/reply round trips.
	futs := make([]*driver.Future[[]float64], parts)
	for p := 0; p < parts; p++ {
		futs[p] = d.GetFloatsAsync(x, p)
	}
	for p, fut := range futs {
		vals, err := fut.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("x[%d] = %.6g\n", p, vals)
	}
}
