// Logistic regression: the paper's running example (Figure 3). A nested
// loop — inner gradient-descent optimization, outer error estimation —
// where both loop conditions are data-dependent and both loop bodies are
// execution templates.
//
// The inner loop uses the v2 driver surface: OptimizeUntil submits the
// whole loop in one message and the controller re-instantiates the
// optimize template while the gradient norm stays above the threshold,
// so N iterations cost one driver↔controller round trip instead of N.
//
//	go run ./examples/logreg
package main

import (
	"fmt"
	"log"

	"nimbus/internal/app/lr"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func main() {
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	d, err := c.Driver("logreg")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	job, err := lr.Setup(d, lr.Config{
		Partitions: 8, Features: 6, RowsPerPart: 300, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.InstallTemplates(); err != nil {
		log.Fatal(err)
	}

	// The nested loop of Figure 3a: optimize until the gradient is small,
	// then estimate the held-out error; repeat until it is low enough.
	// The inner loop is one InstantiateWhile — the controller evaluates
	// "gradient norm >= 0.01" after each iteration and reports back once.
	fmt.Println("training (inner loop = one controller-evaluated predicate loop per outer round)")
	for outer := 1; outer <= 4; outer++ {
		inner, g, err := job.OptimizeUntil(0.01, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  outer %d: %2d inner iterations, gradient norm %.4f\n", outer, inner, g)
		if err := job.Estimate(); err != nil {
			log.Fatal(err)
		}
		e, err := job.ErrorValue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  outer %d: held-out error %.3f\n", outer, e)
		if e < 0.15 {
			break
		}
	}

	coeff, err := job.CoeffValue()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned coefficients: %.3f\n", coeff)

	var auto, full, evals uint64
	c.Controller.Do(func() {
		auto = c.Controller.Stats.AutoValidations.Load()
		full = c.Controller.Stats.Validations.Load()
		evals = c.Controller.Stats.PredicateEvals.Load()
	})
	fmt.Printf("control plane: %d auto-validated instantiations, %d full validations, %d controller-side predicate evaluations\n",
		auto, full, evals)
}
