// Logistic regression: the paper's running example (Figure 3). A nested
// loop — inner gradient-descent optimization, outer error estimation —
// where both loop conditions are data-dependent and both loop bodies are
// execution templates.
//
//	go run ./examples/logreg
package main

import (
	"fmt"
	"log"

	"nimbus/internal/app/lr"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func main() {
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	d, err := c.Driver("logreg")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	job, err := lr.Setup(d, lr.Config{
		Partitions: 8, Features: 6, RowsPerPart: 300, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.InstallTemplates(); err != nil {
		log.Fatal(err)
	}

	// The nested loop of Figure 3a: optimize until the gradient is small,
	// then estimate the held-out error; repeat until it is low enough.
	fmt.Println("training (inner loop = optimize template, outer = estimate template)")
	for outer := 1; outer <= 4; outer++ {
		inner := 0
		for {
			if err := job.Optimize(); err != nil {
				log.Fatal(err)
			}
			inner++
			g, err := job.GradNorm()
			if err != nil {
				log.Fatal(err)
			}
			if g < 0.01 || inner >= 30 {
				fmt.Printf("  outer %d: %2d inner iterations, gradient norm %.4f\n",
					outer, inner, g)
				break
			}
		}
		if err := job.Estimate(); err != nil {
			log.Fatal(err)
		}
		e, err := job.ErrorValue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  outer %d: held-out error %.3f\n", outer, e)
		if e < 0.15 {
			break
		}
	}

	coeff, err := job.CoeffValue()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned coefficients: %.3f\n", coeff)

	var auto, full uint64
	c.Controller.Do(func() {
		auto = c.Controller.Stats.AutoValidations.Load()
		full = c.Controller.Stats.Validations.Load()
	})
	fmt.Printf("control plane: %d auto-validated instantiations, %d full validations\n",
		auto, full)
}
